#include "sta/timing_graph.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hb {

TimingGraph::TimingGraph(const Design& design, const DelayCalculator& calc,
                         const std::vector<bool>* quarantined)
    : design_(&design) {
  const Module& top = design.top();
  const ModuleId top_id = design.top_id();
  if (quarantined != nullptr &&
      std::find(quarantined->begin(), quarantined->end(), true) !=
          quarantined->end()) {
    quarantined_ = *quarantined;
    quarantined_.resize(top.insts().size(), false);
    num_quarantined_ = static_cast<std::size_t>(
        std::count(quarantined_.begin(), quarantined_.end(), true));
  }

  // Create instance pin nodes.  Quarantined instances keep their pin nodes
  // (so InstId/port lookups stay total) but are stripped of sync roles and
  // of every arc below — they end up isolated and clusterless.
  inst_pin_node_.resize(top.insts().size());
  for (std::uint32_t i = 0; i < top.insts().size(); ++i) {
    const Instance& inst = top.inst(InstId(i));
    inst_pin_node_[i].resize(inst.conn.size());
    const Cell* cell = inst.is_cell() ? &design.lib().cell(inst.cell) : nullptr;
    for (std::uint32_t p = 0; p < inst.conn.size(); ++p) {
      TNode node;
      node.inst = InstId(i);
      node.port = p;
      node.net = inst.conn[p];
      node.role = NodeRole::kCombPin;
      if (cell != nullptr && cell->is_sequential() &&
          !is_quarantined(InstId(i))) {
        const SyncSpec& sync = cell->sync();
        if (p == sync.data_in) {
          node.role = NodeRole::kSyncDataIn;
        } else if (p == sync.control) {
          node.role = NodeRole::kSyncControl;
        } else if (p == sync.data_out) {
          node.role = NodeRole::kSyncDataOut;
        }
      }
      inst_pin_node_[i][p] = TNodeId(static_cast<std::uint32_t>(nodes_.size()));
      nodes_.push_back(node);
    }
  }

  // Top-level port nodes.
  top_port_node_.resize(top.ports().size());
  for (std::uint32_t p = 0; p < top.ports().size(); ++p) {
    const ModulePort& port = top.port(p);
    TNode node;
    node.is_top_port = true;
    node.port = p;
    node.net = port.net;
    if (port.direction == PortDirection::kInput) {
      node.role = port.is_clock ? NodeRole::kClockPort : NodeRole::kPortIn;
    } else {
      node.role = NodeRole::kPortOut;
    }
    top_port_node_[p] = TNodeId(static_cast<std::uint32_t>(nodes_.size()));
    nodes_.push_back(node);
  }

  // Component arcs of combinational instances (cells and submodules).  At
  // creation, instance i's arcs occupy the contiguous id range
  // [inst_arc_offsets_[i], inst_arc_offsets_[i+1]); permute_arcs() rewrites
  // inst_arc_ids_ to the final numbering while keeping creation order.
  inst_arc_offsets_.assign(top.insts().size() + 1, 0);
  for (std::uint32_t i = 0; i < top.insts().size(); ++i) {
    const Instance& inst = top.inst(InstId(i));
    inst_arc_offsets_[i] = static_cast<std::uint32_t>(arcs_.size());
    if (is_quarantined(InstId(i))) continue;
    if (inst.is_cell() && design.lib().cell(inst.cell).is_sequential()) continue;
    for (const TimingArc& arc : calc.arcs_of(inst)) {
      if (!inst.conn[arc.from_port].valid() || !inst.conn[arc.to_port].valid()) {
        continue;
      }
      add_arc(inst_pin_node_[i][arc.from_port], inst_pin_node_[i][arc.to_port],
              calc.arc_delay(top_id, InstId(i), arc), arc.unate, false);
    }
  }
  inst_arc_offsets_[top.insts().size()] = static_cast<std::uint32_t>(arcs_.size());
  inst_arc_ids_.resize(arcs_.size());
  for (std::uint32_t a = 0; a < inst_arc_ids_.size(); ++a) inst_arc_ids_[a] = a;

  // Net arcs: every driver pin to every sink pin of the net.  Top input
  // ports drive, top output ports sink.
  for (std::uint32_t n = 0; n < top.num_nets(); ++n) {
    const Net& net = top.net(NetId(n));
    std::vector<TNodeId> drivers, sinks;
    for (const PinRef& pin : net.pins) {
      if (is_quarantined(pin.inst)) continue;
      const Instance& inst = top.inst(pin.inst);
      if (design.target_port_dir(inst, pin.port) == PortDirection::kOutput) {
        drivers.push_back(inst_pin_node_[pin.inst.value()][pin.port]);
      } else {
        sinks.push_back(inst_pin_node_[pin.inst.value()][pin.port]);
      }
    }
    for (std::uint32_t p : net.module_ports) {
      if (top.port(p).direction == PortDirection::kInput) {
        drivers.push_back(top_port_node_[p]);
      } else {
        sinks.push_back(top_port_node_[p]);
      }
    }
    for (TNodeId d : drivers) {
      for (TNodeId s : sinks) {
        add_arc(d, s, RiseFall{0, 0}, Unate::kPositive, true);
      }
    }
  }

  build_csr();
  compute_topo();
  permute_arcs();
}

void TimingGraph::add_arc(TNodeId from, TNodeId to, RiseFall delay, Unate unate,
                          bool is_net) {
  arcs_.push_back(TArcRec{from, to, delay, unate, is_net});
}

void TimingGraph::build_csr() {
  const std::size_t n = nodes_.size();
  fanout_offsets_.assign(n + 1, 0);
  fanin_offsets_.assign(n + 1, 0);
  for (const TArcRec& a : arcs_) {
    ++fanout_offsets_[a.from.index() + 1];
    ++fanin_offsets_[a.to.index() + 1];
  }
  for (std::size_t i = 0; i < n; ++i) {
    fanout_offsets_[i + 1] += fanout_offsets_[i];
    fanin_offsets_[i + 1] += fanin_offsets_[i];
  }
  fanout_arcs_.resize(arcs_.size());
  fanin_arcs_.resize(arcs_.size());
  std::vector<std::uint32_t> out_fill(fanout_offsets_.begin(),
                                      fanout_offsets_.end() - 1);
  std::vector<std::uint32_t> in_fill(fanin_offsets_.begin(),
                                     fanin_offsets_.end() - 1);
  for (std::uint32_t ai = 0; ai < arcs_.size(); ++ai) {
    fanout_arcs_[out_fill[arcs_[ai].from.index()]++] = ai;
    fanin_arcs_[in_fill[arcs_[ai].to.index()]++] = ai;
  }
  // Deterministic per-node ordering, a function of the graph alone: fanout
  // by (head node, arc id), fanin by (tail node, arc id).
  for (std::size_t i = 0; i < n; ++i) {
    std::sort(fanout_arcs_.begin() + fanout_offsets_[i],
              fanout_arcs_.begin() + fanout_offsets_[i + 1],
              [this](std::uint32_t a, std::uint32_t b) {
                if (arcs_[a].to != arcs_[b].to) {
                  return arcs_[a].to.value() < arcs_[b].to.value();
                }
                return a < b;
              });
    std::sort(fanin_arcs_.begin() + fanin_offsets_[i],
              fanin_arcs_.begin() + fanin_offsets_[i + 1],
              [this](std::uint32_t a, std::uint32_t b) {
                if (arcs_[a].from != arcs_[b].from) {
                  return arcs_[a].from.value() < arcs_[b].from.value();
                }
                return a < b;
              });
  }
}

void TimingGraph::permute_arcs() {
  // Final arc numbering: by (topological position of the tail, head node id,
  // creation id).  Each node's fanout slice becomes a run of consecutive
  // ids already in (head, id) order, and a sweep over any level-ordered node
  // subsequence — a cluster — reads the arc array monotonically.  The order
  // depends only on the graph (topo_ is deterministic), not on construction
  // history.
  std::vector<std::uint32_t> topo_pos(nodes_.size(), 0);
  for (std::uint32_t i = 0; i < topo_.size(); ++i) {
    topo_pos[topo_[i].index()] = i;
  }
  std::vector<std::uint32_t> order(arcs_.size());
  for (std::uint32_t a = 0; a < order.size(); ++a) order[a] = a;
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const std::uint32_t fa = topo_pos[arcs_[a].from.index()];
              const std::uint32_t fb = topo_pos[arcs_[b].from.index()];
              if (fa != fb) return fa < fb;
              if (arcs_[a].to != arcs_[b].to) {
                return arcs_[a].to.value() < arcs_[b].to.value();
              }
              return a < b;
            });
  std::vector<std::uint32_t> new_id(arcs_.size());
  std::vector<TArcRec> reordered(arcs_.size());
  for (std::uint32_t k = 0; k < order.size(); ++k) {
    new_id[order[k]] = k;
    reordered[k] = arcs_[order[k]];
  }
  arcs_ = std::move(reordered);
  for (std::uint32_t& id : inst_arc_ids_) id = new_id[id];
  build_csr();
}

TNodeId TimingGraph::pin_node(InstId inst, std::uint32_t port) const {
  return inst_pin_node_.at(inst.index()).at(port);
}

TNodeId TimingGraph::top_port_node(std::uint32_t port) const {
  return top_port_node_.at(port);
}

std::string TimingGraph::node_name(TNodeId id) const {
  const TNode& n = node(id);
  if (n.is_top_port) return "port:" + design_->top().port(n.port).name;
  const Instance& inst = design_->top().inst(n.inst);
  return inst.name + "." + design_->target_port_name(inst, n.port);
}

TimingGraph::DelayUpdate TimingGraph::update_instance_delays(
    InstId inst, const DelayCalculator& calc) {
  const Module& top = design_->top();
  const ModuleId top_id = design_->top_id();
  DelayUpdate upd;

  // The instance itself plus the drivers of its input nets: a pin-cap change
  // on `inst` changes those drivers' output loads, nothing else.
  std::vector<InstId> affected{inst};
  const Instance& self = top.inst(inst);
  for (std::uint32_t p = 0; p < self.conn.size(); ++p) {
    if (!self.conn[p].valid()) continue;
    if (design_->target_port_dir(self, p) != PortDirection::kInput) continue;
    for (const PinRef& pin : top.net(self.conn[p]).pins) {
      const Instance& other = top.inst(pin.inst);
      if (design_->target_port_dir(other, pin.port) != PortDirection::kOutput) {
        continue;
      }
      if (std::find(affected.begin(), affected.end(), pin.inst) ==
          affected.end()) {
        affected.push_back(pin.inst);
      }
    }
  }

  for (InstId a : affected) {
    if (is_quarantined(a)) continue;  // no arcs to refresh (empty span)
    const Instance& ai = top.inst(a);
    if (ai.is_cell() && design_->lib().cell(ai.cell).is_sequential()) {
      if (a != inst) upd.affected_sequential.push_back(a);
      continue;  // element delays live in the SyncModel, not in arcs
    }
    // Walk the instance's arc-id list in the exact order the constructor
    // created it; the arc list of a same-port-layout variant matches 1:1.
    std::uint32_t cursor = inst_arc_offsets_.at(a.index());
    for (const TimingArc& arc : calc.arcs_of(ai)) {
      if (!ai.conn[arc.from_port].valid() || !ai.conn[arc.to_port].valid()) {
        continue;
      }
      const std::uint32_t idx = inst_arc_ids_.at(cursor++);
      TArcRec& rec = arcs_.at(idx);
      HB_ASSERT(rec.from == inst_pin_node_[a.index()][arc.from_port] &&
                rec.to == inst_pin_node_[a.index()][arc.to_port]);
      const RiseFall d = calc.arc_delay(top_id, a, arc);
      if (!(rec.delay == d)) {
        rec.delay = d;
        upd.changed_arcs.push_back(idx);
      }
    }
    HB_ASSERT(cursor == inst_arc_offsets_.at(a.index() + 1));
  }
  return upd;
}

bool TimingGraph::reaches_control(const std::vector<TNodeId>& from) const {
  std::vector<char> visited(nodes_.size(), 0);
  std::vector<TNodeId> stack;
  for (TNodeId n : from) {
    if (!visited[n.index()]) {
      visited[n.index()] = 1;
      stack.push_back(n);
    }
  }
  while (!stack.empty()) {
    const TNodeId n = stack.back();
    stack.pop_back();
    const NodeRole role = nodes_[n.index()].role;
    if (role == NodeRole::kSyncControl) return true;
    if (role == NodeRole::kSyncDataIn) continue;  // no combinational path out
    for (std::uint32_t ai : fanout(n)) {
      const TNodeId to = arcs_[ai].to;
      if (!visited[to.index()]) {
        visited[to.index()] = 1;
        stack.push_back(to);
      }
    }
  }
  return false;
}

void TimingGraph::compute_topo() {
  // Kahn's algorithm processed strictly level by level: the initial frontier
  // is level 0, nodes whose last predecessor retires during level L join
  // level L+1.  Each frontier is sorted by node id, so the resulting order
  // is deterministic, topological, and level-monotone — `topo_` concatenates
  // the levels, and per-cluster node lists inherit the wavefront grouping.
  const std::size_t n = nodes_.size();
  std::vector<std::uint32_t> indeg(n, 0);
  for (const TArcRec& a : arcs_) ++indeg[a.to.index()];
  level_.assign(n, 0);
  topo_.clear();
  topo_.reserve(n);
  std::vector<TNodeId> frontier, next;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) frontier.push_back(TNodeId(i));
  }
  num_levels_ = 0;
  level_offsets_.clear();
  level_offsets_.push_back(0);
  while (!frontier.empty()) {
    for (TNodeId u : frontier) {
      topo_.push_back(u);
      for (std::uint32_t ai : fanout(u)) {
        const TNodeId to = arcs_[ai].to;
        level_[to.index()] =
            std::max(level_[to.index()], level_[u.index()] + 1);
        if (--indeg[to.index()] == 0) next.push_back(to);
      }
    }
    ++num_levels_;
    level_offsets_.push_back(static_cast<std::uint32_t>(topo_.size()));
    std::sort(next.begin(), next.end(),
              [](TNodeId a, TNodeId b) { return a.value() < b.value(); });
    frontier.swap(next);
    next.clear();
  }
  if (topo_.size() != n) {
    raise("timing graph contains a combinational cycle (run validate() first)");
  }
}

}  // namespace hb
