#include "sta/timing_graph.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hb {

TimingGraph::TimingGraph(const Design& design, const DelayCalculator& calc,
                         const std::vector<bool>* quarantined)
    : design_(&design) {
  const Module& top = design.top();
  const ModuleId top_id = design.top_id();
  if (quarantined != nullptr &&
      std::find(quarantined->begin(), quarantined->end(), true) !=
          quarantined->end()) {
    quarantined_ = *quarantined;
    quarantined_.resize(top.insts().size(), false);
  }

  // Create instance pin nodes.  Quarantined instances keep their pin nodes
  // (so InstId/port lookups stay total) but are stripped of sync roles and
  // of every arc below — they end up isolated and clusterless.
  inst_pin_node_.resize(top.insts().size());
  for (std::uint32_t i = 0; i < top.insts().size(); ++i) {
    const Instance& inst = top.inst(InstId(i));
    inst_pin_node_[i].resize(inst.conn.size());
    const Cell* cell = inst.is_cell() ? &design.lib().cell(inst.cell) : nullptr;
    for (std::uint32_t p = 0; p < inst.conn.size(); ++p) {
      TNode node;
      node.inst = InstId(i);
      node.port = p;
      node.net = inst.conn[p];
      node.role = NodeRole::kCombPin;
      if (cell != nullptr && cell->is_sequential() &&
          !is_quarantined(InstId(i))) {
        const SyncSpec& sync = cell->sync();
        if (p == sync.data_in) {
          node.role = NodeRole::kSyncDataIn;
        } else if (p == sync.control) {
          node.role = NodeRole::kSyncControl;
        } else if (p == sync.data_out) {
          node.role = NodeRole::kSyncDataOut;
        }
      }
      inst_pin_node_[i][p] = TNodeId(static_cast<std::uint32_t>(nodes_.size()));
      nodes_.push_back(node);
    }
  }

  // Top-level port nodes.
  top_port_node_.resize(top.ports().size());
  for (std::uint32_t p = 0; p < top.ports().size(); ++p) {
    const ModulePort& port = top.port(p);
    TNode node;
    node.is_top_port = true;
    node.port = p;
    node.net = port.net;
    if (port.direction == PortDirection::kInput) {
      node.role = port.is_clock ? NodeRole::kClockPort : NodeRole::kPortIn;
    } else {
      node.role = NodeRole::kPortOut;
    }
    top_port_node_[p] = TNodeId(static_cast<std::uint32_t>(nodes_.size()));
    nodes_.push_back(node);
  }

  fanout_.resize(nodes_.size());
  fanin_.resize(nodes_.size());

  // Component arcs of combinational instances (cells and submodules).
  inst_arc_span_.resize(top.insts().size());
  for (std::uint32_t i = 0; i < top.insts().size(); ++i) {
    const Instance& inst = top.inst(InstId(i));
    inst_arc_span_[i] = {static_cast<std::uint32_t>(arcs_.size()),
                         static_cast<std::uint32_t>(arcs_.size())};
    if (is_quarantined(InstId(i))) continue;
    if (inst.is_cell() && design.lib().cell(inst.cell).is_sequential()) continue;
    for (const TimingArc& arc : calc.arcs_of(inst)) {
      if (!inst.conn[arc.from_port].valid() || !inst.conn[arc.to_port].valid()) {
        continue;
      }
      add_arc(inst_pin_node_[i][arc.from_port], inst_pin_node_[i][arc.to_port],
              calc.arc_delay(top_id, InstId(i), arc), arc.unate, false);
    }
    inst_arc_span_[i].second = static_cast<std::uint32_t>(arcs_.size());
  }

  // Net arcs: every driver pin to every sink pin of the net.  Top input
  // ports drive, top output ports sink.
  for (std::uint32_t n = 0; n < top.num_nets(); ++n) {
    const Net& net = top.net(NetId(n));
    std::vector<TNodeId> drivers, sinks;
    for (const PinRef& pin : net.pins) {
      if (is_quarantined(pin.inst)) continue;
      const Instance& inst = top.inst(pin.inst);
      if (design.target_port_dir(inst, pin.port) == PortDirection::kOutput) {
        drivers.push_back(inst_pin_node_[pin.inst.value()][pin.port]);
      } else {
        sinks.push_back(inst_pin_node_[pin.inst.value()][pin.port]);
      }
    }
    for (std::uint32_t p : net.module_ports) {
      if (top.port(p).direction == PortDirection::kInput) {
        drivers.push_back(top_port_node_[p]);
      } else {
        sinks.push_back(top_port_node_[p]);
      }
    }
    for (TNodeId d : drivers) {
      for (TNodeId s : sinks) {
        add_arc(d, s, RiseFall{0, 0}, Unate::kPositive, true);
      }
    }
  }

  compute_topo();
}

void TimingGraph::add_arc(TNodeId from, TNodeId to, RiseFall delay, Unate unate,
                          bool is_net) {
  const std::uint32_t idx = static_cast<std::uint32_t>(arcs_.size());
  arcs_.push_back(TArcRec{from, to, delay, unate, is_net});
  fanout_[from.index()].push_back(idx);
  fanin_[to.index()].push_back(idx);
}

TNodeId TimingGraph::pin_node(InstId inst, std::uint32_t port) const {
  return inst_pin_node_.at(inst.index()).at(port);
}

TNodeId TimingGraph::top_port_node(std::uint32_t port) const {
  return top_port_node_.at(port);
}

std::string TimingGraph::node_name(TNodeId id) const {
  const TNode& n = node(id);
  if (n.is_top_port) return "port:" + design_->top().port(n.port).name;
  const Instance& inst = design_->top().inst(n.inst);
  return inst.name + "." + design_->target_port_name(inst, n.port);
}

TimingGraph::DelayUpdate TimingGraph::update_instance_delays(
    InstId inst, const DelayCalculator& calc) {
  const Module& top = design_->top();
  const ModuleId top_id = design_->top_id();
  DelayUpdate upd;

  // The instance itself plus the drivers of its input nets: a pin-cap change
  // on `inst` changes those drivers' output loads, nothing else.
  std::vector<InstId> affected{inst};
  const Instance& self = top.inst(inst);
  for (std::uint32_t p = 0; p < self.conn.size(); ++p) {
    if (!self.conn[p].valid()) continue;
    if (design_->target_port_dir(self, p) != PortDirection::kInput) continue;
    for (const PinRef& pin : top.net(self.conn[p]).pins) {
      const Instance& other = top.inst(pin.inst);
      if (design_->target_port_dir(other, pin.port) != PortDirection::kOutput) {
        continue;
      }
      if (std::find(affected.begin(), affected.end(), pin.inst) ==
          affected.end()) {
        affected.push_back(pin.inst);
      }
    }
  }

  for (InstId a : affected) {
    if (is_quarantined(a)) continue;  // no arcs to refresh (empty span)
    const Instance& ai = top.inst(a);
    if (ai.is_cell() && design_->lib().cell(ai.cell).is_sequential()) {
      if (a != inst) upd.affected_sequential.push_back(a);
      continue;  // element delays live in the SyncModel, not in arcs
    }
    // Walk the instance's arc span in the exact order the constructor
    // created it; the arc list of a same-port-layout variant matches 1:1.
    std::uint32_t idx = inst_arc_span_.at(a.index()).first;
    for (const TimingArc& arc : calc.arcs_of(ai)) {
      if (!ai.conn[arc.from_port].valid() || !ai.conn[arc.to_port].valid()) {
        continue;
      }
      TArcRec& rec = arcs_.at(idx);
      HB_ASSERT(rec.from == inst_pin_node_[a.index()][arc.from_port] &&
                rec.to == inst_pin_node_[a.index()][arc.to_port]);
      const RiseFall d = calc.arc_delay(top_id, a, arc);
      if (!(rec.delay == d)) {
        rec.delay = d;
        upd.changed_arcs.push_back(idx);
      }
      ++idx;
    }
    HB_ASSERT(idx == inst_arc_span_.at(a.index()).second);
  }
  return upd;
}

bool TimingGraph::reaches_control(const std::vector<TNodeId>& from) const {
  std::vector<char> visited(nodes_.size(), 0);
  std::vector<TNodeId> stack;
  for (TNodeId n : from) {
    if (!visited[n.index()]) {
      visited[n.index()] = 1;
      stack.push_back(n);
    }
  }
  while (!stack.empty()) {
    const TNodeId n = stack.back();
    stack.pop_back();
    const NodeRole role = nodes_[n.index()].role;
    if (role == NodeRole::kSyncControl) return true;
    if (role == NodeRole::kSyncDataIn) continue;  // no combinational path out
    for (std::uint32_t ai : fanout_[n.index()]) {
      const TNodeId to = arcs_[ai].to;
      if (!visited[to.index()]) {
        visited[to.index()] = 1;
        stack.push_back(to);
      }
    }
  }
  return false;
}

void TimingGraph::compute_topo() {
  std::vector<std::uint32_t> indeg(nodes_.size(), 0);
  for (const TArcRec& a : arcs_) ++indeg[a.to.index()];
  std::vector<TNodeId> stack;
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    if (indeg[i] == 0) stack.push_back(TNodeId(i));
  }
  topo_.clear();
  while (!stack.empty()) {
    TNodeId n = stack.back();
    stack.pop_back();
    topo_.push_back(n);
    for (std::uint32_t ai : fanout_[n.index()]) {
      if (--indeg[arcs_[ai].to.index()] == 0) stack.push_back(arcs_[ai].to);
    }
  }
  if (topo_.size() != nodes_.size()) {
    raise("timing graph contains a combinational cycle (run validate() first)");
  }
}

}  // namespace hb
