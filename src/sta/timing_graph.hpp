// Timing graph over the top module of a design.
//
// Nodes are pins: instance terminals plus top-level module ports.  Arcs are
//   * component arcs: the timing arcs of combinational library cells and the
//     combined arcs of combinational submodule instances (delay from the
//     DelayCalculator, unateness from the library);
//   * net arcs: driver pin -> sink pin, zero delay, positive unate (wire
//     delay is folded into the driver's load-dependent delay, as in the
//     paper's standard-cell experiments).
//
// Synchronising elements contribute NO arcs: their D->Q / CK->Q behaviour is
// modelled by terminal offsets (sta/sync_model), not by combinational
// propagation.  Consequently the graph restricted to arcs is exactly the
// union of the paper's combinational *clusters*.
//
// Adjacency is stored in CSR form (offset array + packed arc indices), with
// each node's slice sorted deterministically: fanout by (head node, arc id),
// fanin by (tail node, arc id).  Arc records themselves are stored in sweep
// order — sorted by (topological position of the tail, head node id) — so a
// node's fanout slice is a run of consecutive arc ids and a levelized
// forward sweep reads the arc array monotonically.  Both orders are a
// function of the graph alone, not of construction history, so rebuilds
// reproduce identical ids and traversals.
// Every node also carries its *level* — longest-path depth from the graph's
// sources — and `topo_order()` is level-monotone: all nodes of level L
// precede all nodes of level L+1 (ties broken by node id).  Propagation
// sweeps over a level-ordered node list are therefore levelized wavefronts.
// See docs/PERFORMANCE.md.
#pragma once

#include <vector>

#include "delay/calculator.hpp"
#include "netlist/design.hpp"

namespace hb {

enum class NodeRole {
  kCombPin,      // terminal of combinational logic
  kSyncDataIn,   // D of a synchronising element
  kSyncControl,  // CK of a synchronising element
  kSyncDataOut,  // Q of a synchronising element
  kPortIn,       // top-level data input port
  kPortOut,      // top-level output port
  kClockPort,    // top-level clock source port
};

struct TNode {
  NodeRole role = NodeRole::kCombPin;
  bool is_top_port = false;
  InstId inst;              // valid unless is_top_port
  std::uint32_t port = 0;   // cell/module port index, or top port index
  NetId net;                // net this pin connects to (may be invalid)
};

struct TArcRec {
  TNodeId from;
  TNodeId to;
  RiseFall delay;
  Unate unate = Unate::kPositive;
  bool is_net = false;
};

/// Immutable view over one node's slice of the CSR arc-index arrays.
/// Iterates like the `std::vector<std::uint32_t>` it replaced.
class ArcSpan {
 public:
  using value_type = std::uint32_t;
  constexpr ArcSpan() = default;
  constexpr ArcSpan(const std::uint32_t* data, std::size_t size)
      : data_(data), size_(size) {}
  const std::uint32_t* begin() const { return data_; }
  const std::uint32_t* end() const { return data_ + size_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::uint32_t operator[](std::size_t i) const { return data_[i]; }

 private:
  const std::uint32_t* data_ = nullptr;
  std::size_t size_ = 0;
};

class TimingGraph {
 public:
  /// Build over design.top(); delays are evaluated once at build time.
  /// `quarantined` (optional, by InstId; see compute_quarantine) excises the
  /// marked instances for degraded-mode analysis: their pins keep nodes but
  /// lose their sync roles, contribute no component arcs and are dropped
  /// from net arcs, leaving them isolated (clusterless) in the graph.
  TimingGraph(const Design& design, const DelayCalculator& calc,
              const std::vector<bool>* quarantined = nullptr);

  const Design& design() const { return *design_; }

  /// True when `inst` was excluded by the quarantine mask.
  bool is_quarantined(InstId inst) const {
    return !quarantined_.empty() && quarantined_[inst.index()];
  }
  std::size_t num_quarantined() const { return num_quarantined_; }

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_arcs() const { return arcs_.size(); }
  const TNode& node(TNodeId id) const { return nodes_.at(id.index()); }
  const TArcRec& arc(std::size_t i) const { return arcs_.at(i); }
  /// Unchecked base pointer for propagation kernels that index arcs through
  /// CSR slices (already validated at build time).
  const TArcRec* arcs_data() const { return arcs_.data(); }

  /// Arc indices leaving / entering a node (contiguous CSR slices).
  /// Fanout is ordered by (head node id, arc id), fanin by (tail node id,
  /// arc id) — deterministic across rebuilds.
  ArcSpan fanout(TNodeId id) const {
    const std::size_t i = id.index();
    return ArcSpan(fanout_arcs_.data() + fanout_offsets_.at(i),
                   fanout_offsets_[i + 1] - fanout_offsets_[i]);
  }
  ArcSpan fanin(TNodeId id) const {
    const std::size_t i = id.index();
    return ArcSpan(fanin_arcs_.data() + fanin_offsets_.at(i),
                   fanin_offsets_[i + 1] - fanin_offsets_[i]);
  }

  TNodeId pin_node(InstId inst, std::uint32_t port) const;
  TNodeId top_port_node(std::uint32_t port) const;

  /// Human-readable pin name, e.g. "u42.Y" or "port:clk".
  std::string node_name(TNodeId id) const;

  /// Topological order of all nodes w.r.t. arcs (sources first).  Sync pins
  /// have no through-arcs, so this always exists for valid designs.  The
  /// order is level-monotone: level-L nodes precede level-(L+1) nodes, with
  /// each level sorted by node id.
  const std::vector<TNodeId>& topo_order() const { return topo_; }

  /// Longest-path depth of a node from the arc graph's sources (0 for nodes
  /// with no fanin).  level(arc.from) < level(arc.to) for every arc.
  std::uint32_t level(TNodeId id) const { return level_.at(id.index()); }
  /// 1 + max level over all nodes (0 for an empty graph).
  std::uint32_t num_levels() const { return num_levels_; }

  /// CSR boundaries of the level wavefronts inside topo_order(): the nodes
  /// of level L are topo_order()[level_offsets()[L], level_offsets()[L+1]).
  /// Size num_levels() + 1; every arc crosses strictly forward across these
  /// boundaries, so the slice of one level is a data-parallel wavefront.
  const std::vector<std::uint32_t>& level_offsets() const {
    return level_offsets_;
  }

  /// Footprint of re-evaluating one instance's delays in place.
  struct DelayUpdate {
    /// Arcs whose delay actually changed (seed the analysis dirty cones).
    std::vector<std::uint32_t> changed_arcs;
    /// Sequential instances driving the updated instance's input nets:
    /// their D_cz / D_dz see the new load and must be refreshed in the
    /// SyncModel (SyncModel::refresh_element_delays).
    std::vector<InstId> affected_sequential;
  };

  /// Re-evaluate, in place, the component-arc delays of `inst` and of every
  /// instance driving one of its input nets (their loads changed with the
  /// instance's pin caps — e.g. after a cell resize to a variant with the
  /// same port layout).  Structure (nodes, arcs, topology) is unchanged, so
  /// the CSR arrays and levels stay valid: they index arcs, whose delays
  /// mutate in place.
  DelayUpdate update_instance_delays(InstId inst, const DelayCalculator& calc);

  /// True when any node in `from` reaches a synchronising-element control
  /// pin through combinational arcs — i.e. a delay change at these nodes
  /// invalidates the SyncModel's control tracing, not just the slack state.
  bool reaches_control(const std::vector<TNodeId>& from) const;

 private:
  void add_arc(TNodeId from, TNodeId to, RiseFall delay, Unate unate, bool is_net);
  void build_csr();
  void compute_topo();
  /// Re-store arcs_ in sweep order (topo position of tail, head id, creation
  /// id) and rebuild the CSR arrays and per-instance arc-id lists on the new
  /// numbering.  Must run after compute_topo().
  void permute_arcs();

  const Design* design_;
  std::vector<TNode> nodes_;
  std::vector<TArcRec> arcs_;
  // CSR adjacency: per-node contiguous slices of arc indices.
  std::vector<std::uint32_t> fanout_offsets_;  // [num_nodes + 1]
  std::vector<std::uint32_t> fanout_arcs_;     // [num_arcs]
  std::vector<std::uint32_t> fanin_offsets_;
  std::vector<std::uint32_t> fanin_arcs_;
  // pin -> node maps
  std::vector<std::vector<TNodeId>> inst_pin_node_;  // [inst][port]
  std::vector<TNodeId> top_port_node_;
  std::vector<TNodeId> topo_;
  std::vector<std::uint32_t> level_;          // by node index
  std::vector<std::uint32_t> level_offsets_;  // [num_levels + 1], into topo_
  std::uint32_t num_levels_ = 0;
  // Component arc ids of each instance, in the creation order of
  // DelayCalculator::arcs_of (CSR over instances; ids follow the sweep-order
  // numbering after permute_arcs).
  std::vector<std::uint32_t> inst_arc_offsets_;  // [num_insts + 1]
  std::vector<std::uint32_t> inst_arc_ids_;
  // Degraded mode: excluded instances by InstId (empty = none).
  std::vector<bool> quarantined_;
  std::size_t num_quarantined_ = 0;
};

}  // namespace hb
