// Timing graph over the top module of a design.
//
// Nodes are pins: instance terminals plus top-level module ports.  Arcs are
//   * component arcs: the timing arcs of combinational library cells and the
//     combined arcs of combinational submodule instances (delay from the
//     DelayCalculator, unateness from the library);
//   * net arcs: driver pin -> sink pin, zero delay, positive unate (wire
//     delay is folded into the driver's load-dependent delay, as in the
//     paper's standard-cell experiments).
//
// Synchronising elements contribute NO arcs: their D->Q / CK->Q behaviour is
// modelled by terminal offsets (sta/sync_model), not by combinational
// propagation.  Consequently the graph restricted to arcs is exactly the
// union of the paper's combinational *clusters*.
#pragma once

#include <algorithm>
#include <vector>

#include "delay/calculator.hpp"
#include "netlist/design.hpp"

namespace hb {

enum class NodeRole {
  kCombPin,      // terminal of combinational logic
  kSyncDataIn,   // D of a synchronising element
  kSyncControl,  // CK of a synchronising element
  kSyncDataOut,  // Q of a synchronising element
  kPortIn,       // top-level data input port
  kPortOut,      // top-level output port
  kClockPort,    // top-level clock source port
};

struct TNode {
  NodeRole role = NodeRole::kCombPin;
  bool is_top_port = false;
  InstId inst;              // valid unless is_top_port
  std::uint32_t port = 0;   // cell/module port index, or top port index
  NetId net;                // net this pin connects to (may be invalid)
};

struct TArcRec {
  TNodeId from;
  TNodeId to;
  RiseFall delay;
  Unate unate = Unate::kPositive;
  bool is_net = false;
};

class TimingGraph {
 public:
  /// Build over design.top(); delays are evaluated once at build time.
  /// `quarantined` (optional, by InstId; see compute_quarantine) excises the
  /// marked instances for degraded-mode analysis: their pins keep nodes but
  /// lose their sync roles, contribute no component arcs and are dropped
  /// from net arcs, leaving them isolated (clusterless) in the graph.
  TimingGraph(const Design& design, const DelayCalculator& calc,
              const std::vector<bool>* quarantined = nullptr);

  const Design& design() const { return *design_; }

  /// True when `inst` was excluded by the quarantine mask.
  bool is_quarantined(InstId inst) const {
    return !quarantined_.empty() && quarantined_[inst.index()];
  }
  std::size_t num_quarantined() const {
    return static_cast<std::size_t>(
        std::count(quarantined_.begin(), quarantined_.end(), true));
  }

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_arcs() const { return arcs_.size(); }
  const TNode& node(TNodeId id) const { return nodes_.at(id.index()); }
  const TArcRec& arc(std::size_t i) const { return arcs_.at(i); }

  /// Arc indices leaving / entering a node.
  const std::vector<std::uint32_t>& fanout(TNodeId id) const {
    return fanout_.at(id.index());
  }
  const std::vector<std::uint32_t>& fanin(TNodeId id) const {
    return fanin_.at(id.index());
  }

  TNodeId pin_node(InstId inst, std::uint32_t port) const;
  TNodeId top_port_node(std::uint32_t port) const;

  /// Human-readable pin name, e.g. "u42.Y" or "port:clk".
  std::string node_name(TNodeId id) const;

  /// Topological order of all nodes w.r.t. arcs (sources first).  Sync pins
  /// have no through-arcs, so this always exists for valid designs.
  const std::vector<TNodeId>& topo_order() const { return topo_; }

  /// Footprint of re-evaluating one instance's delays in place.
  struct DelayUpdate {
    /// Arcs whose delay actually changed (seed the analysis dirty cones).
    std::vector<std::uint32_t> changed_arcs;
    /// Sequential instances driving the updated instance's input nets:
    /// their D_cz / D_dz see the new load and must be refreshed in the
    /// SyncModel (SyncModel::refresh_element_delays).
    std::vector<InstId> affected_sequential;
  };

  /// Re-evaluate, in place, the component-arc delays of `inst` and of every
  /// instance driving one of its input nets (their loads changed with the
  /// instance's pin caps — e.g. after a cell resize to a variant with the
  /// same port layout).  Structure (nodes, arcs, topology) is unchanged.
  DelayUpdate update_instance_delays(InstId inst, const DelayCalculator& calc);

  /// True when any node in `from` reaches a synchronising-element control
  /// pin through combinational arcs — i.e. a delay change at these nodes
  /// invalidates the SyncModel's control tracing, not just the slack state.
  bool reaches_control(const std::vector<TNodeId>& from) const;

 private:
  void add_arc(TNodeId from, TNodeId to, RiseFall delay, Unate unate, bool is_net);
  void compute_topo();

  const Design* design_;
  std::vector<TNode> nodes_;
  std::vector<TArcRec> arcs_;
  std::vector<std::vector<std::uint32_t>> fanout_;
  std::vector<std::vector<std::uint32_t>> fanin_;
  // pin -> node maps
  std::vector<std::vector<TNodeId>> inst_pin_node_;  // [inst][port]
  std::vector<TNodeId> top_port_node_;
  std::vector<TNodeId> topo_;
  // Component arcs of each instance occupy one contiguous index range
  // (build order); net arcs come after all of them.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> inst_arc_span_;
  // Degraded mode: excluded instances by InstId (empty = none).
  std::vector<bool> quarantined_;
};

}  // namespace hb
