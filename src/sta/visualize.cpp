#include "sta/visualize.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace hb {
namespace {

/// Dot-safe identifier from a pin name.
std::string dot_id(const std::string& name) {
  std::string out = "n_";
  for (char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return out;
}

const char* slack_colour(TimePs slack) {
  if (slack == kInfinitePs) return "gray80";
  if (slack < 0) return "red";
  if (slack < ns(1)) return "orange";
  return "palegreen3";
}

}  // namespace

std::string to_dot(const SlackEngine& engine, VisualizeOptions options) {
  const TimingGraph& graph = engine.graph();
  const ClusterSet& clusters = engine.clusters();

  // Restrict to clusters touched by the worst paths, if requested.
  std::unordered_set<std::uint32_t> keep_clusters;
  std::unordered_set<std::uint32_t> path_nodes;
  if (options.max_paths > 0) {
    for (const SlowPath& p : enumerate_slow_paths(engine, options.max_paths)) {
      for (const PathStep& s : p.steps) {
        path_nodes.insert(s.node.value());
        const ClusterId c = clusters.cluster_of(s.node);
        if (c.valid()) keep_clusters.insert(c.value());
      }
    }
  }
  const bool draw_all = keep_clusters.empty();

  std::ostringstream os;
  os << "digraph timing {\n  rankdir=LR;\n  node [shape=box, style=filled];\n";
  for (std::uint32_t c = 0; c < clusters.num_clusters(); ++c) {
    if (!draw_all && keep_clusters.count(c) == 0) continue;
    const Cluster& cl = clusters.cluster(ClusterId(c));
    os << "  subgraph cluster_" << c << " {\n    label=\"cluster " << c
       << " (" << engine.num_passes(ClusterId(c)) << " pass(es))\";\n";
    for (TNodeId n : cl.nodes) {
      const NodeTiming& nt = engine.node_timing(n);
      if (nt.slack > options.slack_cutoff) continue;
      os << "    " << dot_id(graph.node_name(n)) << " [label=\""
         << graph.node_name(n);
      if (nt.has_constraint) os << "\\n" << format_time(nt.slack);
      os << "\", fillcolor=" << slack_colour(nt.slack);
      if (path_nodes.count(n.value()) != 0) os << ", penwidth=3";
      os << "];\n";
    }
    for (std::uint32_t ai : cl.arcs) {
      const TArcRec& arc = graph.arc(ai);
      if (engine.node_timing(arc.from).slack > options.slack_cutoff ||
          engine.node_timing(arc.to).slack > options.slack_cutoff) {
        continue;
      }
      os << "    " << dot_id(graph.node_name(arc.from)) << " -> "
         << dot_id(graph.node_name(arc.to));
      if (!arc.is_net) os << " [label=\"" << format_time(arc.delay.max()) << "\"]";
      os << ";\n";
    }
    os << "  }\n";
  }
  os << "}\n";
  return os.str();
}

std::string slack_histogram(const SlackEngine& engine, int buckets) {
  const SyncModel& sync = engine.sync();
  std::vector<TimePs> slacks;
  for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
    for (TimePs s : {engine.launch_slack(SyncId(i)), engine.capture_slack(SyncId(i))}) {
      if (s != kInfinitePs) slacks.push_back(s);
    }
  }
  std::ostringstream os;
  if (slacks.empty()) {
    os << "no constrained terminals\n";
    return os.str();
  }
  const auto [lo_it, hi_it] = std::minmax_element(slacks.begin(), slacks.end());
  const TimePs lo = *lo_it, hi = *hi_it;
  const TimePs span = std::max<TimePs>(hi - lo, 1);
  const TimePs step = (span + buckets - 1) / buckets;
  std::vector<int> counts(static_cast<std::size_t>(buckets), 0);
  for (TimePs s : slacks) {
    const std::size_t b = std::min<std::size_t>(
        static_cast<std::size_t>((s - lo) / step), counts.size() - 1);
    ++counts[b];
  }
  const int peak = *std::max_element(counts.begin(), counts.end());
  for (int b = 0; b < buckets; ++b) {
    const TimePs from = lo + b * step;
    os << "[" << format_time(from) << " .. " << format_time(from + step) << ") ";
    const int bar = peak > 0 ? counts[static_cast<std::size_t>(b)] * 40 / peak : 0;
    os << std::string(static_cast<std::size_t>(bar), '*') << "  "
       << counts[static_cast<std::size_t>(b)] << "\n";
  }
  return os.str();
}

}  // namespace hb
