// Graphical inspection — the stand-in for viewing flagged slow paths in a
// VEM editing session over the OCT database (paper Section 8).  Emits
// Graphviz dot: clusters as subgraphs, nodes coloured by slack, slow-path
// arcs highlighted.  Also provides a text slack histogram for one-screen
// health checks.
#pragma once

#include <string>

#include "sta/report.hpp"

namespace hb {

struct VisualizeOptions {
  /// Only clusters touched by these many worst paths are drawn (keeps the
  /// graph readable on large designs); 0 draws everything.
  std::size_t max_paths = 8;
  /// Omit nodes with slack above this bound (kInfinitePs draws all).
  TimePs slack_cutoff = kInfinitePs;
};

/// Render the timing graph (or the slow neighbourhood of it) as dot.
std::string to_dot(const SlackEngine& engine, VisualizeOptions options = {});

/// Text histogram of terminal slacks, e.g. for CLI output:
///     [ -2 ns .. -1 ns)  ****        4
std::string slack_histogram(const SlackEngine& engine, int buckets = 10);

}  // namespace hb
