#include "synth/redesign_loop.hpp"

#include <memory>
#include <unordered_set>

#include "synth/resize.hpp"
#include "util/thread_pool.hpp"

namespace hb {
namespace {

/// Pick up to `budget` distinct on-path cell instances to upsize, preferring
/// the slowest steps of the worst paths.  Returns the instances upsized.
std::vector<InstId> resize_along_paths(Design& design, const TimingGraph& graph,
                                       const std::vector<SlowPath>& paths,
                                       int budget) {
  std::vector<InstId> resized;
  std::unordered_set<std::uint32_t> tried;
  for (const SlowPath& p : paths) {
    if (static_cast<int>(resized.size()) >= budget) break;
    // Score each on-path instance by the step delay it contributes.
    std::vector<std::pair<TimePs, InstId>> candidates;
    for (std::size_t s = 1; s < p.steps.size(); ++s) {
      const TNode& node = graph.node(p.steps[s].node);
      if (node.is_top_port || !node.inst.valid()) continue;
      const TimePs step = p.steps[s].arrival - p.steps[s - 1].arrival;
      if (graph.node(p.steps[s - 1].node).inst == node.inst) {
        candidates.emplace_back(step, node.inst);
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (const auto& [step, inst] : candidates) {
      if (static_cast<int>(resized.size()) >= budget) break;
      if (!tried.insert(inst.value()).second) continue;
      if (upsize_instance(design, inst)) resized.push_back(inst);
    }
  }
  return resized;
}

}  // namespace

RedesignResult run_redesign_loop(Design& design, const ClockSet& clocks,
                                 RedesignOptions options) {
  RedesignResult res;
  res.initial_area_um2 = total_area_um2(design);

  std::unique_ptr<ThreadPool> pool;
  if (options.threads != 1) pool = std::make_unique<ThreadPool>(options.threads);
  options.analysis.alg1.incremental = options.incremental;
  options.analysis.alg1.pool = pool.get();

  std::unique_ptr<Hummingbird> hb;
  for (res.iterations = 0; res.iterations < options.max_iterations;
       ++res.iterations) {
    if (!hb) {
      hb = std::make_unique<Hummingbird>(design, clocks, options.analysis);
      ++res.analyser_rebuilds;
    }
    const Algorithm1Result a1 = hb->analyze();
    if (res.iterations == 0) res.initial_worst_slack = a1.worst_slack;
    res.final_worst_slack = a1.worst_slack;
    if (a1.works_as_intended) {
      res.met_timing = true;
      break;
    }
    const auto paths = hb->slow_paths(8);
    const std::vector<InstId> resized = resize_along_paths(
        design, hb->graph(), paths, options.resizes_per_iteration);
    if (resized.empty()) break;  // nothing left to upsize: timing unreachable
    res.cells_resized += static_cast<int>(resized.size());
    if (options.incremental) {
      bool absorbed = true;
      for (InstId inst : resized) {
        absorbed = hb->update_instance_delays(inst) && absorbed;
      }
      if (!absorbed) hb.reset();  // fall back: rebuild next iteration
    } else {
      hb.reset();
    }
  }

  res.final_area_um2 = total_area_um2(design);
  return res;
}

}  // namespace hb
