// Algorithm 3 of the paper — the analysis-redesign loop:
//
//   Synthesise initial area-optimised combinational logic modules.
//   Until all paths are fast enough:
//     Perform timing analysis to identify all paths that are too slow;
//     Provide input data ready times and output required times for all
//       combinational logic modules traversed by paths that are too slow;
//     Select one such module and speed up slow paths.
//
// The "speed up" step stands in for Singh et al. [1]: on each iteration the
// worst slow path is retraced and the on-path cell whose load-dependent
// delay shrinks the most is swapped to its next stronger drive variant.
#pragma once

#include "clocks/waveform.hpp"
#include "netlist/design.hpp"
#include "sta/hummingbird.hpp"

namespace hb {

struct RedesignOptions {
  HummingbirdOptions analysis;
  /// Upper bound on analyse-resize iterations.
  int max_iterations = 200;
  /// Cells upsized per iteration (along the worst paths).
  int resizes_per_iteration = 4;
  /// Keep one analyser alive across iterations: absorb each resize via
  /// Hummingbird::update_instance_delays and re-analyse incrementally,
  /// rebuilding only when a change cannot be absorbed (sequential cell,
  /// control-path delay change).  Off = rebuild every iteration.
  bool incremental = true;
  /// Worker threads for pass evaluation: 1 = serial, 0 = one per hardware
  /// thread, n = n threads.
  int threads = 1;
};

struct RedesignResult {
  bool met_timing = false;
  int iterations = 0;
  int cells_resized = 0;
  /// Analyser constructions (pre-processing runs); incremental mode keeps
  /// this near 1, rebuild-per-iteration mode equals iterations.
  int analyser_rebuilds = 0;
  TimePs initial_worst_slack = 0;
  TimePs final_worst_slack = 0;
  double initial_area_um2 = 0.0;
  double final_area_um2 = 0.0;
};

/// Runs the loop, mutating `design` (cell selections only; topology is
/// untouched).
RedesignResult run_redesign_loop(Design& design, const ClockSet& clocks,
                                 RedesignOptions options = {});

}  // namespace hb
