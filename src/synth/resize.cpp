#include "synth/resize.hpp"

#include "sta/hummingbird.hpp"

namespace hb {
namespace {

double module_area(const Design& design, ModuleId id) {
  double area = 0.0;
  for (const Instance& inst : design.module(id).insts()) {
    if (inst.is_cell()) {
      area += design.lib().cell(inst.cell).area_um2();
    } else {
      area += module_area(design, inst.module);
    }
  }
  return area;
}

}  // namespace

bool upsize_instance(Design& design, InstId inst) {
  Module& top = design.module_mut(design.top_id());
  Instance& i = top.inst_mut(inst);
  if (!i.is_cell()) return false;
  const CellId stronger = design.lib().stronger_variant(i.cell);
  if (!stronger.valid()) return false;
  // Family variants share the port layout, so connections stay valid.
  HB_ASSERT(design.lib().cell(stronger).ports().size() ==
            design.lib().cell(i.cell).ports().size());
  i.cell = stronger;
  return true;
}

ResizeUpdate upsize_and_update(Design& design, InstId inst, Hummingbird& hb) {
  if (!upsize_instance(design, inst)) return ResizeUpdate::kNotResized;
  return hb.update_instance_delays(inst) ? ResizeUpdate::kAbsorbed
                                         : ResizeUpdate::kRebuildRequired;
}

double total_area_um2(const Design& design) {
  return module_area(design, design.top_id());
}

}  // namespace hb
