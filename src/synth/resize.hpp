// Cell resizing primitives for the analysis-redesign loop (Algorithm 3).
// The paper delegates "how to achieve the speed up" to Singh et al. [1];
// this stand-in speeds a combinational module up the standard-cell way: by
// swapping instances to stronger drive variants of the same family.
#pragma once

#include "netlist/design.hpp"

namespace hb {

/// Swap an instance of the top module to the next stronger family variant.
/// Returns false if the instance is already at maximum drive, is a
/// submodule instance, or its cell has no family.
bool upsize_instance(Design& design, InstId inst);

/// Total standard-cell area of the design (recursing into submodules).
double total_area_um2(const Design& design);

}  // namespace hb
