// Cell resizing primitives for the analysis-redesign loop (Algorithm 3).
// The paper delegates "how to achieve the speed up" to Singh et al. [1];
// this stand-in speeds a combinational module up the standard-cell way: by
// swapping instances to stronger drive variants of the same family.
#pragma once

#include "netlist/design.hpp"

namespace hb {

class Hummingbird;

/// Swap an instance of the top module to the next stronger family variant.
/// Returns false if the instance is already at maximum drive, is a
/// submodule instance, or its cell has no family.
bool upsize_instance(Design& design, InstId inst);

enum class ResizeUpdate {
  kNotResized,       // no stronger variant; design unchanged
  kAbsorbed,         // resized and absorbed into the live analyser
  kRebuildRequired,  // resized, but the analyser must be reconstructed
};

/// Upsize `inst` and absorb the delay change into a live analyser via
/// Hummingbird::update_instance_delays, so the next reanalysis is
/// incremental.  `hb` must have been built over `design`.
ResizeUpdate upsize_and_update(Design& design, InstId inst, Hummingbird& hb);

/// Total standard-cell area of the design (recursing into submodules).
double total_area_um2(const Design& design);

}  // namespace hb
