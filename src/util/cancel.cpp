#include "util/cancel.hpp"

#include "util/faultinject.hpp"

namespace hb {

bool CancelToken::cancelled() const {
  if (flag_.load(std::memory_order_relaxed)) return true;
  if (FaultInjector::instance().should_fire(FaultSite::kSpuriousCancel)) {
    flag_.store(true, std::memory_order_relaxed);  // cancellation is sticky
    return true;
  }
  return false;
}

BudgetTimer::BudgetTimer(const AnalysisBudget& budget) { rearm(budget); }

void BudgetTimer::rearm() { rearm(budget_); }

void BudgetTimer::rearm(const AnalysisBudget& budget) {
  budget_ = budget;
  cycles_ = 0;
  exhausted_ = false;
  has_deadline_ = budget_.wall_seconds > 0;
  if (has_deadline_) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(budget_.wall_seconds));
  }
}

bool BudgetTimer::exhausted() {
  if (exhausted_) return true;
  if (budget_.max_total_cycles > 0 && cycles_ >= budget_.max_total_cycles) {
    exhausted_ = true;
  } else if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    exhausted_ = true;
  } else if (budget_.cancel != nullptr && budget_.cancel->cancelled()) {
    exhausted_ = true;
  }
  return exhausted_;
}

}  // namespace hb
