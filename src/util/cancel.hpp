// Cooperative cancellation and analysis watchdogs.
//
// A CancelToken is a thread-safe flag checked at safe points: between
// relaxation sweeps in Algorithms 1 and 2, and between tasks inside
// ThreadPool::run_batch.  Nothing is interrupted mid-propagation, so
// cancelled analyses always leave the engine in a consistent (if stale)
// state and the last evaluated offsets remain conservative.
//
// An AnalysisBudget bundles the watchdog limits threaded through an
// analysis: a wall-clock deadline and a cap on relaxation cycles.  When a
// BudgetTimer reports exhaustion the algorithms stop transferring slack and
// return the current state tagged AnalysisStatus::kTimedOut instead of
// looping or raising.
//
// Both primitives are reusable across sequential requests: CancelToken
// resets with reset(), and a BudgetTimer re-arms with rearm(), which
// restarts the wall-clock window from "now" and clears the sticky exhausted
// state — the pattern a long-lived service connection uses to serve many
// deadline-bounded requests with one token/timer pair.
#pragma once

#include <atomic>
#include <chrono>

namespace hb {

class CancelToken {
 public:
  void cancel() { flag_.store(true, std::memory_order_relaxed); }
  /// Disarm for reuse: a token cancelled (or spuriously tripped by fault
  /// injection) during one request starts the next request clean.
  void reset() { flag_.store(false, std::memory_order_relaxed); }
  /// True once cancel() has been called.  Also the hook point where the
  /// fault-injection framework fires spurious cancellations in test builds.
  bool cancelled() const;

 private:
  // mutable: cancelled() latches injected spurious cancellations.
  mutable std::atomic<bool> flag_{false};
};

struct AnalysisBudget {
  /// Wall-clock limit in seconds; 0 = unlimited.
  double wall_seconds = 0;
  /// Cap on total slack-transfer/snatch cycles across all iterations;
  /// 0 = unlimited (the per-iteration safety caps still apply).
  int max_total_cycles = 0;
  /// Optional external cancellation; not owned, may be null.
  CancelToken* cancel = nullptr;

  bool limited() const {
    return wall_seconds > 0 || max_total_cycles > 0 || cancel != nullptr;
  }
};

/// Tracks one analysis run against its budget.  Checking is cheap enough to
/// call once per relaxation sweep; an unlimited budget short-circuits.
///
/// A timer is single-shot per run but reusable across runs: rearm() starts
/// the next run with a fresh wall-clock window, a zeroed cycle count and the
/// exhausted flag cleared.  A still-cancelled token keeps the re-armed timer
/// exhausted until the token itself is reset.
class BudgetTimer {
 public:
  explicit BudgetTimer(const AnalysisBudget& budget);

  /// Count one relaxation cycle against the budget.
  void count_cycle() { ++cycles_; }

  /// Deadline passed, cycle cap hit, or cancellation requested.  Sticky:
  /// once exhausted, stays exhausted (until the next rearm()).
  bool exhausted();

  /// Re-arm for a new run against the same budget: the wall-clock deadline
  /// restarts from now, the cycle count zeroes and the sticky exhausted
  /// state clears.
  void rearm();
  /// Re-arm against a different budget (e.g. a request-specific deadline).
  void rearm(const AnalysisBudget& budget);

  int cycles() const { return cycles_; }

 private:
  AnalysisBudget budget_;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  int cycles_ = 0;
  bool exhausted_ = false;
};

}  // namespace hb
