#include "util/diagnostics.hpp"

#include <cctype>

#include "util/error.hpp"

namespace hb {

const char* diag_code_name(DiagCode code) {
  switch (code) {
    case DiagCode::kParseSyntax: return "parse-syntax";
    case DiagCode::kParseUnknownKeyword: return "parse-unknown-keyword";
    case DiagCode::kParseBadNumber: return "parse-bad-number";
    case DiagCode::kParseUnknownName: return "parse-unknown-name";
    case DiagCode::kParseDuplicateName: return "parse-duplicate-name";
    case DiagCode::kParseStructure: return "parse-structure";
    case DiagCode::kParseUnterminated: return "parse-unterminated";
    case DiagCode::kParseEmptyInput: return "parse-empty-input";
    case DiagCode::kDesignUnconnected: return "design-unconnected";
    case DiagCode::kDesignNoDriver: return "design-no-driver";
    case DiagCode::kDesignMultiDriver: return "design-multi-driver";
    case DiagCode::kDesignCombCycle: return "design-comb-cycle";
    case DiagCode::kDesignControlCone: return "design-control-cone";
    case DiagCode::kDesignHierarchy: return "design-hierarchy";
    case DiagCode::kClockNonHarmonic: return "clock-non-harmonic";
    case DiagCode::kAnalysisQuarantined: return "analysis-quarantined";
    case DiagCode::kAnalysisBudget: return "analysis-budget";
    case DiagCode::kAnalysisSelfHeal: return "analysis-self-heal";
    case DiagCode::kServiceRejected: return "service-rejected";
    case DiagCode::kSnapshotMissing: return "snapshot-missing";
    case DiagCode::kSnapshotCorrupt: return "snapshot-corrupt";
    case DiagCode::kSnapshotVersionSkew: return "snapshot-version-skew";
    case DiagCode::kSnapshotIo: return "snapshot-io";
  }
  return "unknown";
}

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
    case Severity::kFatal: return "fatal";
  }
  return "error";
}

const char* analysis_status_name(AnalysisStatus status) {
  switch (status) {
    case AnalysisStatus::kComplete: return "complete";
    case AnalysisStatus::kPartial: return "partial";
    case AnalysisStatus::kTimedOut: return "timed_out";
  }
  return "complete";
}

std::string Diagnostic::to_string() const {
  std::string out = severity_name(severity);
  out += '[';
  out += diag_code_name(code);
  out += ']';
  if (loc.valid()) {
    out += " at line " + std::to_string(loc.line);
    if (loc.col > 0) out += ", col " + std::to_string(loc.col);
  }
  out += ": ";
  out += message;
  if (!hint.empty()) {
    out += " (hint: ";
    out += hint;
    out += ')';
  }
  return out;
}

void DiagnosticSink::add(Diagnostic d) {
  if (d.severity == Severity::kError || d.severity == Severity::kFatal) ++errors_;
  diags_.push_back(std::move(d));
}

void DiagnosticSink::add(DiagCode code, Severity severity, SourceLoc loc,
                         std::string message, std::string hint) {
  add(Diagnostic{code, severity, loc, std::move(message), std::move(hint)});
}

const Diagnostic& DiagnosticSink::first_error() const {
  for (const Diagnostic& d : diags_) {
    if (d.severity == Severity::kError || d.severity == Severity::kFatal) return d;
  }
  raise("DiagnosticSink::first_error() called without errors");
}

void DiagnosticSink::clear() {
  diags_.clear();
  errors_ = 0;
}

std::string DiagnosticSink::to_string() const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    out += d.to_string();
    out += '\n';
  }
  return out;
}

void raise_first_error(const char* prefix, const DiagnosticSink& sink) {
  const Diagnostic& d = sink.first_error();
  std::string msg(prefix);
  if (d.loc.valid()) {
    msg += " at line " + std::to_string(d.loc.line);
    if (d.loc.col > 0) msg += ", col " + std::to_string(d.loc.col);
  }
  msg += ": " + d.message;
  raise(msg);
}

std::vector<Token> split_tokens(const std::string& line) {
  std::vector<Token> toks;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    if (i >= line.size() || line[i] == '#') break;
    const std::size_t start = i;
    while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    toks.push_back(Token{line.substr(start, i - start), static_cast<int>(start) + 1});
  }
  return toks;
}

}  // namespace hb
