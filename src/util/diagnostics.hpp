// Structured diagnostics for Hummingbird (the resilient-runtime layer).
//
// A Diagnostic is one machine-readable finding: a stable code, a severity,
// an optional source location (line/column for parsers, names for design
// checks), a message and an optional suggested fix.  Producers append to a
// DiagnosticSink instead of throwing, so a single run can surface *every*
// problem in a file or design rather than dying on the first one; callers
// that still want fail-fast semantics use the sink-free wrappers, which
// raise hb::Error from the first error-severity diagnostic.
//
// Codes are grouped by layer (parse / design / clock / analysis) and are
// documented in docs/ROBUSTNESS.md; treat them as a stable interface for
// tooling built on top of the analyser.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hb {

enum class Severity {
  kNote,     // information attached to another finding
  kWarning,  // suspicious but analysable
  kError,    // the construct is unusable; analysis degrades around it
  kFatal,    // nothing usable could be produced at all
};

enum class DiagCode : std::uint16_t {
  // Parsers (netlist / library / timing spec).
  kParseSyntax,          // malformed statement
  kParseUnknownKeyword,  // unrecognised statement keyword
  kParseBadNumber,       // unparsable numeric / time literal
  kParseUnknownName,     // reference to an undeclared cell/module/net/port
  kParseDuplicateName,   // redeclaration of an existing name
  kParseStructure,       // misplaced statement (outside module/cell, nesting)
  kParseUnterminated,    // EOF inside an open module/cell
  kParseEmptyInput,      // no usable content at all

  // Structural design validation.
  kDesignUnconnected,    // instance port with no net
  kDesignNoDriver,       // net read but never driven
  kDesignMultiDriver,    // non-tristate net with several drivers
  kDesignCombCycle,      // combinational cycle
  kDesignControlCone,    // control pin not a monotonic function of one clock
  kDesignHierarchy,      // submodule breaks the combinational-only rule

  // Clock / analysis runtime.
  kClockNonHarmonic,     // clock set with an exploded overall period
  kAnalysisQuarantined,  // cluster/instances excluded by degraded mode
  kAnalysisBudget,       // watchdog expired; result tagged timed_out
  kAnalysisSelfHeal,     // incremental cache divergence healed

  // Query service (src/service).
  kServiceRejected,      // well-formed query the session cannot apply
                         // (e.g. upsize of a maxed-out or sequential cell)

  // Persistent snapshot store (src/service/snapshot_store).
  kSnapshotMissing,      // no stored snapshot for the requested design
  kSnapshotCorrupt,      // truncated image or per-section checksum mismatch
  kSnapshotVersionSkew,  // readable header but unknown format version
  kSnapshotIo,           // filesystem failure while saving/loading
};

/// Stable lower-case identifier for a code, e.g. "parse-syntax".
const char* diag_code_name(DiagCode code);
const char* severity_name(Severity severity);

/// Source position of a finding; 0 means "not applicable" for either field.
struct SourceLoc {
  int line = 0;
  int col = 0;
  bool valid() const { return line > 0; }
};

struct Diagnostic {
  DiagCode code = DiagCode::kParseSyntax;
  Severity severity = Severity::kError;
  SourceLoc loc;
  std::string message;
  /// Optional actionable suggestion ("declare the net before `conn`", ...).
  std::string hint;

  /// "error[parse-syntax] at line 4, col 9: ... (hint: ...)".
  std::string to_string() const;
};

/// Ordered collection of diagnostics from one operation.
class DiagnosticSink {
 public:
  void add(Diagnostic d);
  /// Convenience for the common case.
  void add(DiagCode code, Severity severity, SourceLoc loc, std::string message,
           std::string hint = {});

  const std::vector<Diagnostic>& all() const { return diags_; }
  bool empty() const { return diags_.empty(); }
  std::size_t size() const { return diags_.size(); }

  /// Count / presence of error-or-worse findings.
  std::size_t error_count() const { return errors_; }
  bool has_errors() const { return errors_ > 0; }
  /// First error-severity diagnostic; requires has_errors().
  const Diagnostic& first_error() const;

  void clear();

  /// All findings, one per line (diagnostic to_string() format).
  std::string to_string() const;

 private:
  std::vector<Diagnostic> diags_;
  std::size_t errors_ = 0;
};

/// Fail-fast bridge for the legacy throwing parser APIs: raises hb::Error
/// as "<prefix> at line N, col M: <first error message>" (location parts
/// omitted when the diagnostic has none).  Requires sink.has_errors().
[[noreturn]] void raise_first_error(const char* prefix,
                                    const DiagnosticSink& sink);

/// Result-quality tag for analysis entry points (Algorithms 1 and 2).
enum class AnalysisStatus {
  kComplete,  // every constraint evaluated with full information
  kPartial,   // degraded mode: quarantined portions were not analysed
  kTimedOut,  // watchdog expired; offsets are the last conservative state
};
const char* analysis_status_name(AnalysisStatus status);

/// A token with its 1-based starting column — shared by the line-oriented
/// parsers so every syntax diagnostic can point at the offending token.
struct Token {
  std::string text;
  int col = 0;
};

/// Split a line on whitespace, dropping '#' comments, recording columns.
std::vector<Token> split_tokens(const std::string& line);

}  // namespace hb
