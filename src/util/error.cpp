#include "util/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace hb {

void raise(const std::string& msg) { throw Error(msg); }

namespace detail {

void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "hummingbird internal error: assertion `%s` failed at %s:%d\n",
               expr, file, line);
  std::abort();
}

}  // namespace detail
}  // namespace hb
