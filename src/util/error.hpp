// Error reporting for Hummingbird.
//
// Structural problems in user input (bad netlist, non-harmonic clocks,
// combinational cycles) raise hb::Error with a formatted message; internal
// invariant violations use HB_ASSERT which aborts with location info.
#pragma once

#include <stdexcept>
#include <string>

namespace hb {

/// Exception thrown for malformed designs, files or clock specifications.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] void raise(const std::string& msg);

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line);
}  // namespace detail

}  // namespace hb

#define HB_ASSERT(expr)                                       \
  do {                                                        \
    if (!(expr)) ::hb::detail::assert_fail(#expr, __FILE__, __LINE__); \
  } while (false)
