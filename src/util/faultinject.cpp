#include "util/faultinject.hpp"

namespace hb {
namespace {

// SplitMix64 finaliser — the same mixer Rng uses, reimplemented here so the
// injector has no dependency on (and cannot perturb) generator seeds.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(const Config& config) {
  config_ = config;
  for (int s = 0; s < kNumFaultSites; ++s) {
    draws_[s].store(0, std::memory_order_relaxed);
    fires_[s].store(0, std::memory_order_relaxed);
  }
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::disarm() { armed_.store(false, std::memory_order_release); }

bool FaultInjector::should_fire(FaultSite site) {
  if (!armed_.load(std::memory_order_acquire)) return false;
  const int s = static_cast<int>(site);
  const double p = config_.probability[s];
  if (p <= 0) return false;
  const std::uint64_t n = draws_[s].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t h = mix(mix(config_.seed ^ (0x5157ULL + s)) ^ n);
  // Top 53 bits -> uniform double in [0, 1).
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u >= p) return false;
  fires_[s].fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::uint64_t FaultInjector::draw(FaultSite site) {
  const int s = static_cast<int>(site);
  const std::uint64_t n = draws_[s].fetch_add(1, std::memory_order_relaxed);
  return mix(mix(config_.seed ^ (0xd0a1ULL + s)) ^ n);
}

std::uint64_t FaultInjector::draw_count(FaultSite site) const {
  return draws_[static_cast<int>(site)].load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::fire_count(FaultSite site) const {
  return fires_[static_cast<int>(site)].load(std::memory_order_relaxed);
}

}  // namespace hb
