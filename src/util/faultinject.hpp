// Deterministic fault injection for resilience tests.
//
// The injector is compiled into the library but disarmed by default: every
// hook is a single relaxed atomic load returning false, so production code
// pays (almost) nothing.  Tests arm it with a seed and per-site
// probabilities; firing decisions are a pure function of (seed, site,
// per-site draw counter), so a given seed produces the same fault sequence
// at each site on every run regardless of thread scheduling.
//
// Sites:
//   kPoolTask       — ThreadPool throws FaultInjectedError instead of
//                     running a task (exception-propagation paths);
//   kSpuriousCancel — CancelToken::cancelled() returns true spuriously
//                     (watchdog / timed_out paths);
//   kCacheCorrupt   — SlackEngine perturbs one cached pass result before an
//                     incremental update (self-check / self-heal paths);
//   kSnapshotShortWrite  — SnapshotStore::save truncates the serialized
//                     image at a deterministic offset before it hits disk
//                     (torn-write / crash-mid-write recovery paths);
//   kSnapshotBitFlip     — SnapshotStore::save flips one deterministic bit
//                     of the image (silent media-corruption paths);
//   kSnapshotStaleVersion — SnapshotStore::save stamps a future format
//                     version into the header (version-skew rejection
//                     paths, e.g. a rollback after an upgrade);
//   kCornerLaneCorrupt — CornerAnalysis perturbs one lane of one cached
//                     K-lane pass result before an incremental update
//                     (per-corner self-check / self-heal paths).
#pragma once

#include <atomic>
#include <cstdint>

#include "util/error.hpp"

namespace hb {

enum class FaultSite : int {
  kPoolTask = 0,
  kSpuriousCancel = 1,
  kCacheCorrupt = 2,
  kSnapshotShortWrite = 3,
  kSnapshotBitFlip = 4,
  kSnapshotStaleVersion = 5,
  kCornerLaneCorrupt = 6,
};
inline constexpr int kNumFaultSites = 7;

/// Exception thrown by injected task faults; an hb::Error so recovery paths
/// treat it exactly like a real analysis failure.
class FaultInjectedError : public Error {
 public:
  explicit FaultInjectedError(const std::string& what) : Error(what) {}
};

class FaultInjector {
 public:
  struct Config {
    std::uint64_t seed = 1;
    /// Firing probability per site, in [0, 1].
    double probability[kNumFaultSites] = {};
  };

  /// Process-wide instance used by all hook points.
  static FaultInjector& instance();

  /// Arm with a config; resets all counters.  Not thread-safe against
  /// concurrent should_fire callers — arm before starting work.
  void arm(const Config& config);
  void disarm();
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Decide whether the fault at `site` fires now.  Deterministic in the
  /// number of prior draws at the same site.
  bool should_fire(FaultSite site);

  /// Extra deterministic random stream for shaping a fired fault (e.g.
  /// which cache entry to corrupt).
  std::uint64_t draw(FaultSite site);

  /// Draws / fires at a site since arm().
  std::uint64_t draw_count(FaultSite site) const;
  std::uint64_t fire_count(FaultSite site) const;

  /// RAII arming for tests: disarms on scope exit.
  class Scope {
   public:
    explicit Scope(const Config& config) { FaultInjector::instance().arm(config); }
    ~Scope() { FaultInjector::instance().disarm(); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
  };

 private:
  std::atomic<bool> armed_{false};
  Config config_;
  std::atomic<std::uint64_t> draws_[kNumFaultSites] = {};
  std::atomic<std::uint64_t> fires_[kNumFaultSites] = {};
};

/// Hook helper: throws FaultInjectedError when the site fires.
inline void maybe_inject_fault(FaultSite site, const char* what) {
  if (FaultInjector::instance().should_fire(site)) {
    throw FaultInjectedError(std::string("injected fault: ") + what);
  }
}

}  // namespace hb
