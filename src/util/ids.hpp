// Strongly typed index handles for the design database and timing graph.
//
// A handle is a 32-bit index tagged with the table it indexes, so that a
// NetId can never be passed where an InstId is expected.  Invalid handles
// compare equal to Id::invalid() and are the default-constructed state.
#pragma once

#include <cstdint>
#include <functional>

namespace hb {

template <class Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(std::uint32_t v) : value_(v) {}

  static constexpr Id invalid() { return Id(); }
  constexpr bool valid() const { return value_ != kInvalid; }
  constexpr std::uint32_t value() const { return value_; }
  /// Index into the owning table; only meaningful when valid().
  constexpr std::size_t index() const { return value_; }

  friend constexpr bool operator==(Id a, Id b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) { return a.value_ < b.value_; }

 private:
  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;
  std::uint32_t value_ = kInvalid;
};

struct CellTag;      // library cell
struct PortTag;      // library cell port
struct ModuleTag;    // hierarchical design module
struct InstTag;      // instance within a module
struct NetTag;       // net within a module
struct PinTag;       // pin (instance terminal or module port) within a module
struct ClockTag;     // clock signal
struct EdgeTag;      // clock edge within the overall period
struct TNodeTag;     // timing graph node
struct ClusterTag;   // combinational cluster
struct SyncTag;      // generic synchronising element instance

using CellId = Id<CellTag>;
using PortId = Id<PortTag>;
using ModuleId = Id<ModuleTag>;
using InstId = Id<InstTag>;
using NetId = Id<NetTag>;
using PinId = Id<PinTag>;
using ClockId = Id<ClockTag>;
using ClockEdgeId = Id<EdgeTag>;
using TNodeId = Id<TNodeTag>;
using ClusterId = Id<ClusterTag>;
using SyncId = Id<SyncTag>;

}  // namespace hb

namespace std {
template <class Tag>
struct hash<hb::Id<Tag>> {
  size_t operator()(hb::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>()(id.value());
  }
};
}  // namespace std
