#include "util/rng.hpp"

#include "util/error.hpp"

namespace hb {

std::uint64_t Rng::next() {
  // SplitMix64 (Steele, Lea, Flood 2014). Public domain reference constants.
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  HB_ASSERT(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  return lo + static_cast<std::int64_t>(next() % span);
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::chance(double p) { return uniform01() < p; }

std::size_t Rng::pick(std::size_t size) {
  HB_ASSERT(size > 0);
  return static_cast<std::size_t>(next() % size);
}

}  // namespace hb
