// Deterministic pseudo-random generator for circuit generators and
// property-based tests.  SplitMix64: tiny, fast, and identical on every
// platform (unlike std::mt19937 distributions, whose output is
// implementation-defined for some distribution types).
#pragma once

#include <cstdint>
#include <vector>

namespace hb {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli draw with probability p of true.
  bool chance(double p);

  /// Pick a uniformly random element index of a container of given size.
  std::size_t pick(std::size_t size);

  /// Fisher-Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = pick(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t state_;
};

}  // namespace hb
