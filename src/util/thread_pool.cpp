#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/cancel.hpp"
#include "util/faultinject.hpp"

namespace hb {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  num_threads = std::max(1, num_threads);
  workers_.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::run_batch(const std::vector<std::function<void()>>& tasks,
                           const CancelToken* cancel) {
  if (tasks.empty()) return true;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_ = &tasks;
    cancel_ = cancel;
    next_.store(0, std::memory_order_relaxed);
    completed_ = 0;
    skipped_ = 0;
    first_error_ = nullptr;
    ++generation_;
  }
  wake_.notify_all();
  work_through();
  std::exception_ptr error;
  bool complete = true;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Wait until every task ran AND every worker left the batch, so the
    // shared counter can be reset for the next batch without a straggler
    // picking indices against a stale task list.
    done_.wait(lock, [&] { return completed_ == tasks.size() && active_ == 0; });
    batch_ = nullptr;
    cancel_ = nullptr;
    error = first_error_;
    complete = skipped_ == 0;
  }
  if (error) std::rethrow_exception(error);
  return complete;
}

void ThreadPool::work_through() {
  const std::vector<std::function<void()>>* batch;
  const CancelToken* cancel;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch = batch_;
    cancel = cancel_;
  }
  if (batch == nullptr) return;
  std::size_t done_here = 0;
  std::size_t skipped_here = 0;
  std::exception_ptr error;
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch->size()) break;
    if (cancel != nullptr && cancel->cancelled()) {
      // Cooperative cancellation: consume the index without running the
      // task so the batch still drains and the pool stays consistent.
      ++skipped_here;
    } else {
      try {
        maybe_inject_fault(FaultSite::kPoolTask, "thread pool task");
        (*batch)[i]();
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    ++done_here;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  completed_ += done_here;
  skipped_ += skipped_here;
  if (error && !first_error_) first_error_ = error;
  if (completed_ == batch->size()) done_.notify_all();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      ++active_;
    }
    work_through();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (active_ == 0) done_.notify_all();
    }
  }
}

}  // namespace hb
