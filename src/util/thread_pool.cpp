#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/cancel.hpp"
#include "util/faultinject.hpp"

namespace hb {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  num_threads = std::max(1, num_threads);
  scratch_.resize(static_cast<std::size_t>(num_threads));
  workers_.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::run_batch(const std::vector<std::function<void()>>& tasks,
                           const CancelToken* cancel) {
  if (tasks.empty()) return true;
  std::lock_guard<std::mutex> submit(submit_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_ = &tasks;
    chunk_fn_ = nullptr;
    cancel_ = cancel;
    num_items_ = tasks.size();
    next_.store(0, std::memory_order_relaxed);
    completed_ = 0;
    skipped_ = 0;
    first_error_ = nullptr;
    ++generation_;
  }
  wake_.notify_all();
  work_through(0);
  std::exception_ptr error;
  bool complete = true;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Wait until every task ran AND every worker left the batch, so the
    // shared counter can be reset for the next job without a straggler
    // picking indices against a stale task list.
    done_.wait(lock, [&] { return completed_ == num_items_ && active_ == 0; });
    batch_ = nullptr;
    cancel_ = nullptr;
    error = first_error_;
    complete = skipped_ == 0;
  }
  if (error) std::rethrow_exception(error);
  return complete;
}

void ThreadPool::run_chunks(std::size_t n, std::size_t grain, void* ctx,
                            ChunkFn fn) {
  const std::size_t chunks = (n + grain - 1) / grain;
  std::lock_guard<std::mutex> submit(submit_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_ = nullptr;
    chunk_fn_ = fn;
    chunk_ctx_ = ctx;
    chunk_n_ = n;
    chunk_grain_ = grain;
    cancel_ = nullptr;
    num_items_ = chunks;
    next_.store(0, std::memory_order_relaxed);
    completed_ = 0;
    skipped_ = 0;
    first_error_ = nullptr;
    ++generation_;
  }
  wake_.notify_all();
  work_through(0);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return completed_ == num_items_ && active_ == 0; });
    chunk_fn_ = nullptr;
    chunk_ctx_ = nullptr;
    error = first_error_;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::work_through(int worker) {
  const std::vector<std::function<void()>>* batch;
  ChunkFn chunk_fn;
  void* chunk_ctx;
  std::size_t chunk_n;
  std::size_t chunk_grain;
  std::size_t items;
  const CancelToken* cancel;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch = batch_;
    chunk_fn = chunk_fn_;
    chunk_ctx = chunk_ctx_;
    chunk_n = chunk_n_;
    chunk_grain = chunk_grain_;
    items = num_items_;
    cancel = cancel_;
  }
  if (batch == nullptr && chunk_fn == nullptr) return;
  std::size_t done_here = 0;
  std::size_t skipped_here = 0;
  std::exception_ptr error;
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= items) break;
    if (cancel != nullptr && cancel->cancelled()) {
      // Cooperative cancellation: consume the index without running the
      // task so the job still drains and the pool stays consistent.
      ++skipped_here;
    } else {
      try {
        maybe_inject_fault(FaultSite::kPoolTask, "thread pool task");
        if (batch != nullptr) {
          (*batch)[i]();
        } else {
          const std::size_t begin = i * chunk_grain;
          const std::size_t end = std::min(chunk_n, begin + chunk_grain);
          chunk_fn(chunk_ctx, begin, end, worker);
        }
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    ++done_here;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  completed_ += done_here;
  skipped_ += skipped_here;
  if (error && !first_error_) first_error_ = error;
  if (completed_ == items) done_.notify_all();
}

void ThreadPool::worker_loop(int worker) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      ++active_;
    }
    work_through(worker);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (active_ == 0) done_.notify_all();
    }
  }
}

ThreadPool* env_analysis_pool() {
  static ThreadPool* pool = []() -> ThreadPool* {
    const char* env = std::getenv("HB_THREADS");
    if (env == nullptr || *env == '\0') return nullptr;
    const int n = std::atoi(env);
    if (n <= 1) return nullptr;
    static ThreadPool instance(n);
    return &instance;
  }();
  return pool;
}

}  // namespace hb
