// Small fixed-size worker pool for evaluating independent analysis passes
// and for chunked data-parallel sweeps.
//
// The pool runs *jobs*: run_batch() hands every worker (plus the calling
// thread) tasks from a shared atomic counter and returns when all tasks have
// finished; parallel_for() does the same over fixed-size index chunks of a
// range.  Tasks and chunks must be independent — the slack engine guarantees
// this by giving every (cluster, pass) task its own result slot, and the
// level-parallel sweep kernels by writing only the nodes of their own chunk
// — so the schedule never affects results, only wall-clock time.
//
// Chunk boundaries in parallel_for are a pure function of (n, grain), never
// of the worker count or the schedule: determinism across thread counts is
// preserved by construction, not by synchronisation.
//
// Fault containment: a task/chunk exception never terminates the process or
// a worker thread.  The job always runs to completion (a failed task does
// not starve the others), and the first exception thrown by any task is
// re-thrown on the calling thread after the job completes — identically
// on the serial and the pooled path.
//
// Cancellation is cooperative: when run_batch() is given a CancelToken and
// it trips mid-batch, tasks not yet started are skipped and run_batch
// returns false.  The caller owns the consequences (typically: discard the
// partial state and tag the analysis timed_out); the pool itself stays
// usable for the next job.
//
// Concurrent submitters are serialised by an internal mutex: two threads may
// safely call run_batch()/parallel_for() on the same pool (they queue behind
// each other).  Jobs are still not re-entrant: a task must not submit to the
// pool that is running it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <typeinfo>
#include <vector>

namespace hb {

class CancelToken;

class ThreadPool {
 public:
  /// `num_threads` counts workers *including* the calling thread: the pool
  /// spawns num_threads - 1 std::threads.  0 picks hardware_concurrency().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers, calling thread included; always >= 1.
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Run tasks[0..n) to completion.  Each task is executed exactly once, on
  /// an unspecified worker.  Not re-entrant: tasks must not call run_batch.
  /// Returns true when every task ran; false when `cancel` tripped and the
  /// remaining tasks were skipped.  The first task exception is re-thrown
  /// here after the batch has drained.
  bool run_batch(const std::vector<std::function<void()>>& tasks,
                 const CancelToken* cancel = nullptr);

  /// Chunked data-parallel loop: splits [0, n) into chunks of `grain`
  /// consecutive indices (the last chunk may be short) and calls
  /// `fn(begin, end, worker)` once per chunk, where `worker` in [0, size())
  /// identifies the executing worker — a stable scratch index, not a
  /// schedule promise.  Chunk boundaries depend only on (n, grain), never on
  /// the worker count, so a chunk-owns-its-writes kernel is bit-identical at
  /// every thread count by construction.  When the range fits a single
  /// chunk, or the pool has one worker, fn runs inline on the calling
  /// thread.  Steady state allocates nothing (fn is passed by reference
  /// through a plain function pointer, not a std::function).  The first
  /// chunk exception is re-thrown after the loop drains; injected kPoolTask
  /// faults fire per dispatched chunk, as for batch tasks.
  template <class Fn>
  void parallel_for(std::size_t n, std::size_t grain, Fn&& fn) {
    if (n == 0) return;
    if (grain == 0) grain = 1;
    const std::size_t chunks = (n + grain - 1) / grain;
    if (chunks <= 1 || workers_.empty()) {
      fn(std::size_t{0}, n, 0);
      return;
    }
    using Bare = std::remove_reference_t<Fn>;
    run_chunks(n, grain, &fn,
               [](void* ctx, std::size_t begin, std::size_t end, int worker) {
                 (*static_cast<Bare*>(ctx))(begin, end, worker);
               });
  }

  /// Reusable per-worker scratch of type T: one instance per (pool, worker,
  /// T), default-constructed on first use and reused across tasks, chunks
  /// and jobs ever after — parallel sweeps keep their zero-steady-state-
  /// allocation guarantee by parking grow-only buffers here.  Only the
  /// worker executing under index `worker` may touch its slot during a job
  /// (slots of distinct workers are independent).
  template <class T>
  T& scratch(int worker) {
    Holder<T>* holder = nullptr;
    std::vector<SlotEntry>& slots = scratch_[static_cast<std::size_t>(worker)];
    for (SlotEntry& entry : slots) {
      if (entry.type == &typeid(T)) {
        holder = static_cast<Holder<T>*>(entry.value.get());
        break;
      }
    }
    if (holder == nullptr) {
      auto fresh = std::make_unique<Holder<T>>();
      holder = fresh.get();
      slots.push_back(SlotEntry{&typeid(T), std::move(fresh)});
    }
    return holder->value;
  }

 private:
  struct ScratchBase {
    virtual ~ScratchBase() = default;
  };
  template <class T>
  struct Holder : ScratchBase {
    T value{};
  };
  struct SlotEntry {
    const std::type_info* type;
    std::unique_ptr<ScratchBase> value;
  };

  using ChunkFn = void (*)(void* ctx, std::size_t begin, std::size_t end,
                           int worker);

  void run_chunks(std::size_t n, std::size_t grain, void* ctx, ChunkFn fn);
  void worker_loop(int worker);
  void work_through(int worker);

  std::vector<std::thread> workers_;
  std::vector<std::vector<SlotEntry>> scratch_;  // by worker index
  std::mutex submit_mutex_;  // serialises concurrent job submitters
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;

  // All fields below except next_ are guarded by mutex_.
  const std::vector<std::function<void()>>* batch_ = nullptr;  // batch job
  ChunkFn chunk_fn_ = nullptr;                                 // chunk job
  void* chunk_ctx_ = nullptr;
  std::size_t chunk_n_ = 0;
  std::size_t chunk_grain_ = 0;
  std::size_t num_items_ = 0;  // tasks or chunks in the current job
  const CancelToken* cancel_ = nullptr;
  std::atomic<std::size_t> next_{0};
  std::size_t completed_ = 0;
  std::size_t skipped_ = 0;
  int active_ = 0;  // workers currently inside the job
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

/// Process-wide pool configured by the HB_THREADS environment variable, or
/// nullptr when unset / not greater than 1.  SlackEngine::compute()/update()
/// fall back to it when given no explicit pool, which lets CI force the
/// parallel sweep machinery through every tier-1 test without touching test
/// code (the pool serialises concurrent submitters internally).
ThreadPool* env_analysis_pool();

}  // namespace hb
