// Small fixed-size worker pool for evaluating independent analysis passes.
//
// The pool runs *batches*: run_batch() hands every worker (plus the calling
// thread) tasks from a shared atomic counter and returns when all tasks have
// finished.  Tasks must be independent — the slack engine guarantees this by
// giving every (cluster, pass) task its own result slot — so the schedule
// never affects results, only wall-clock time.
//
// Fault containment: a task exception never terminates the process or a
// worker thread.  The batch always runs to completion (a failed task does
// not starve the others), and the first exception thrown by any task is
// re-thrown on the calling thread after the batch completes — identically
// on the serial and the pooled path.
//
// Cancellation is cooperative: when run_batch() is given a CancelToken and
// it trips mid-batch, tasks not yet started are skipped and run_batch
// returns false.  The caller owns the consequences (typically: discard the
// partial state and tag the analysis timed_out); the pool itself stays
// usable for the next batch.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hb {

class CancelToken;

class ThreadPool {
 public:
  /// `num_threads` counts workers *including* the calling thread: the pool
  /// spawns num_threads - 1 std::threads.  0 picks hardware_concurrency().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers, calling thread included; always >= 1.
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Run tasks[0..n) to completion.  Each task is executed exactly once, on
  /// an unspecified worker.  Not re-entrant: tasks must not call run_batch.
  /// Returns true when every task ran; false when `cancel` tripped and the
  /// remaining tasks were skipped.  The first task exception is re-thrown
  /// here after the batch has drained.
  bool run_batch(const std::vector<std::function<void()>>& tasks,
                 const CancelToken* cancel = nullptr);

 private:
  void worker_loop();
  void work_through();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;

  // All fields below except next_ are guarded by mutex_.
  const std::vector<std::function<void()>>* batch_ = nullptr;
  const CancelToken* cancel_ = nullptr;
  std::atomic<std::size_t> next_{0};
  std::size_t completed_ = 0;
  std::size_t skipped_ = 0;
  int active_ = 0;  // workers currently inside the batch
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace hb
