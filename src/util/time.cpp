#include "util/time.hpp"

#include <cstdlib>
#include <numeric>

namespace hb {

TimePs gcd_ps(TimePs a, TimePs b) { return std::gcd(a, b); }

TimePs lcm_ps(TimePs a, TimePs b) {
  if (a == 0 || b == 0) return 0;
  return std::lcm(a, b);
}

std::string format_time(TimePs t) {
  if (t == kInfinitePs) return "+inf";
  if (t == -kInfinitePs) return "-inf";
  const bool neg = t < 0;
  const TimePs a = neg ? -t : t;
  std::string out = neg ? "-" : "";
  if (a % 1000 == 0) {
    out += std::to_string(a / 1000) + " ns";
  } else if (a < 1000) {
    out += std::to_string(a) + " ps";
  } else {
    // Mixed: ns with fractional ps part.
    out += std::to_string(a / 1000) + "." ;
    std::string frac = std::to_string(a % 1000);
    out += std::string(3 - frac.size(), '0') + frac + " ns";
  }
  return out;
}

}  // namespace hb
