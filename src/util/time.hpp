// Integer-picosecond time arithmetic used throughout Hummingbird.
//
// All timing quantities (clock edges, delays, offsets, slacks) are held as
// 64-bit picosecond counts.  Integer time makes the fixpoint loops of
// Algorithms 1 and 2 exact and the tests bit-reproducible; 2^63 ps is about
// 106 days, far beyond any clock schedule of interest.
#pragma once

#include <cstdint>
#include <string>

namespace hb {

/// Time, delay or offset in picoseconds.
using TimePs = std::int64_t;

/// Sentinel for "no constraint yet" during backward slack propagation.
/// Large but far from overflow when added to real delays.
inline constexpr TimePs kInfinitePs = INT64_C(1) << 50;

/// Convenience literal helpers: hb::ns(2) == 2000 ps.
constexpr TimePs ps(std::int64_t v) { return v; }
constexpr TimePs ns(std::int64_t v) { return v * 1000; }
constexpr TimePs us(std::int64_t v) { return v * 1'000'000; }

/// True Euclidean modulus: result is always in [0, m) for m > 0.
/// C++ `%` truncates toward zero, which is wrong for negative clock phases.
constexpr TimePs mod_period(TimePs t, TimePs m) {
  TimePs r = t % m;
  return r < 0 ? r + m : r;
}

/// Greatest common divisor / least common multiple of periods.
TimePs gcd_ps(TimePs a, TimePs b);
TimePs lcm_ps(TimePs a, TimePs b);

/// Render as a human-readable string, e.g. "12.345 ns" or "-3 ps".
std::string format_time(TimePs t);

}  // namespace hb
