// Deeper Algorithm 1 / Algorithm 2 behaviour: offset trajectories, latch
// loops (directed cycles through transparent latches), tristate buses,
// enable-path endpoints, and the min-period search utility.
#include <gtest/gtest.h>

#include "constraints/feasibility.hpp"
#include "gen/pipeline.hpp"
#include "netlist/builder.hpp"
#include "netlist/stdcells.hpp"
#include "sta/hummingbird.hpp"
#include "sta/search.hpp"

namespace hb {
namespace {

class AlgorithmTest : public ::testing::Test {
 protected:
  std::shared_ptr<const Library> lib_ = make_standard_library();

  static SyncId find_instance(const SyncModel& sync, const std::string& label) {
    for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
      if (sync.at(SyncId(i)).label == label) return SyncId(i);
    }
    return SyncId::invalid();
  }
};

// Forward slack transfer must move a transparent latch's adjustable pair
// toward the beginning of the pulse when the downstream stage needs time.
TEST_F(AlgorithmTest, TransferMovesOffsetsForward) {
  // L1 (phi1) -> heavy logic -> L2 (phi2) -> PO, with the heavy stage
  // needing more than the rigid phi1-trail-to-phi2-trail window.
  TopBuilder b("fwd", lib_);
  const NetId phi1 = b.port_in("phi1", true);
  const NetId phi2 = b.port_in("phi2", true);
  NetId n = b.latch("TLATCH", b.port_in("d"), phi1, "l1");
  for (int i = 0; i < 110; ++i) n = b.gate("INVX1", {n});
  const NetId q = b.latch("TLATCH", n, phi2, "l2");
  b.port_out_net("q", q);
  const Design design = b.finish();
  const ClockSet clocks = make_two_phase_clocks(ns(10));

  Hummingbird analyser(design, clocks);
  const Algorithm1Result res = analyser.analyze();
  EXPECT_TRUE(res.works_as_intended);
  EXPECT_GT(res.forward_cycles, 0);

  const SyncModel& sync = analyser.sync_model();
  const SyncInstance& l1 = sync.at(find_instance(sync, "l1#0"));
  // l1's assertion moved off the trailing edge toward the pulse start:
  // O_zd dropped below its initial value W.
  EXPECT_LT(l1.ozd, l1.width);
  // Element constraints still hold after all transfers.
  EXPECT_GE(l1.ozd, 0);
  EXPECT_LE(l1.odz, -l1.ddz);
  EXPECT_EQ(l1.ozd, l1.width + l1.odz + l1.ddz);
}

// The paper: "too slow" may apply to a set of paths forming a directed
// cycle traversing two or more transparent latches.  A two-latch ring whose
// total delay exceeds the period must be rejected; one that fits must pass
// regardless of how the logic splits across the two arcs.
TEST_F(AlgorithmTest, LatchRingConstrainedByLoopDelay) {
  for (const bool should_work : {true, false}) {
    const int total = should_work ? 120 : 260;  // ~50 ps per inverter
    TopBuilder b(std::string("ring") + (should_work ? "_ok" : "_slow"), lib_);
    const NetId phi1 = b.port_in("phi1", true);
    const NetId phi2 = b.port_in("phi2", true);
    // Ring: l1 -> chainA -> l2 -> chainB -> (back into l1) with a MUX to
    // inject the primary input.
    const NetId back = b.net("back");
    const NetId inject =
        b.gate("MUX2X1", {b.port_in("d"), back, b.port_in("sel")});
    NetId n = b.latch("TLATCH", inject, phi1, "l1");
    for (int i = 0; i < total * 2 / 3; ++i) n = b.gate("INVX1", {n});
    n = b.latch("TLATCH", n, phi2, "l2");
    for (int i = 0; i < total / 3 - 1; ++i) n = b.gate("INVX1", {n});
    // Close the loop through a final named inverter driving `back`.
    {
      Module& m = b.module();
      const CellId inv = lib_->require("INVX1");
      const InstId g = m.add_cell_inst("loop_inv", inv, 2);
      m.connect(g, 0, n);
      m.connect(g, 1, back);
    }
    b.port_out_net("q", n);
    const Design design = b.finish();
    const ClockSet clocks = make_two_phase_clocks(ns(10));

    Hummingbird analyser(design, clocks);
    const Algorithm1Result res = analyser.analyze();
    EXPECT_EQ(res.works_as_intended, should_work) << "total depth " << total;
    const FeasibilityResult feas = check_intended_behaviour(analyser.engine());
    EXPECT_EQ(feas.feasible || res.works_as_intended, feas.feasible)
        << "verdicts disagree";
    if (should_work) {
      EXPECT_TRUE(feas.feasible);
    }
  }
}

// A tristate bus: two TRIBUF drivers on one net, captured by a flip-flop.
// Both drivers' launches constrain the capture; the slack reflects the
// later-asserting driver.
TEST_F(AlgorithmTest, TristateBusTakesWorstDriver) {
  TopBuilder b("bus", lib_);
  const NetId phi1 = b.port_in("phi1", true);
  const NetId phi2 = b.port_in("phi2", true);
  const NetId bus = b.net("bus");
  Module& m = b.module();
  const CellId tb = lib_->require("TRIBUF");
  const SyncSpec& tb_sync = lib_->cell(tb).sync();
  // Driver A enabled by phi1, driver B by phi2.
  const NetId da = b.port_in("da");
  const NetId db = b.port_in("db");
  for (int i = 0; i < 2; ++i) {
    const InstId inst = m.add_cell_inst(i == 0 ? "bufA" : "bufB", tb, 3);
    m.connect(inst, tb_sync.data_in, i == 0 ? da : db);
    m.connect(inst, tb_sync.control, i == 0 ? phi1 : phi2);
    m.connect(inst, tb_sync.data_out, bus);
  }
  b.port_out_net("q", b.latch("DFFT", bus, phi1, "cap"));
  const Design design = b.finish();
  const ClockSet clocks = make_two_phase_clocks(ns(10));

  Hummingbird analyser(design, clocks);
  EXPECT_TRUE(analyser.analyze().works_as_intended);
  const SyncModel& sync = analyser.sync_model();
  // All three element instances see the bus cluster; the capture's slack is
  // finite and bounded by the later (phi2) driver.
  const TimePs cap_slack =
      analyser.engine().capture_slack(find_instance(sync, "cap#0"));
  ASSERT_NE(cap_slack, kInfinitePs);
  const TimePs a_slack =
      analyser.engine().launch_slack(find_instance(sync, "bufA#0"));
  const TimePs b_slack =
      analyser.engine().launch_slack(find_instance(sync, "bufB#0"));
  EXPECT_EQ(cap_slack, std::min(a_slack, b_slack));
}

// Enable-path endpoints: a gated control whose enable logic is too slow for
// the leading control edge must be flagged (negative slack at the enable
// sink), while fast enable logic passes.
TEST_F(AlgorithmTest, EnablePathConstrainedByLeadingEdge) {
  for (const int depth : {2, 130}) {
    TopBuilder b("en" + std::to_string(depth), lib_);
    const NetId clk = b.port_in("clk", true);
    NetId en = b.latch("DFFT", b.port_in("e"), clk, "en_ff");
    for (int i = 0; i < depth; ++i) en = b.gate("BUFX1", {en});
    const NetId gated = b.gate("AND2X1", {clk, en});
    b.port_out_net("q", b.latch("TLATCH", b.port_in("d"), gated, "lat"));
    const Design design = b.finish();
    ClockSet clocks;
    // Pulse [6, 9] ns: the enable is launched at the 9 ns trailing edge and
    // must settle before the next leading edge at 16 ns — a 7 ns window.
    // Depth 2 (~0.5 ns) passes easily; depth 130 (~8.5 ns of buffers) fails.
    clocks.add_simple_clock("clk", ns(10), ns(6), ns(9));
    Hummingbird analyser(design, clocks);
    const Algorithm1Result res = analyser.analyze();
    const SyncModel& sync = analyser.sync_model();
    const SyncId en_sink = find_instance(sync, "enable:lat#0");
    ASSERT_TRUE(en_sink.valid());
    const TimePs slack = analyser.engine().capture_slack(en_sink);
    ASSERT_NE(slack, kInfinitePs);
    if (depth == 2) {
      EXPECT_GT(slack, 0);
    } else {
      EXPECT_LT(slack, 0);
      EXPECT_FALSE(res.works_as_intended);
    }
  }
}

// Algorithm 2's snatching must engage on designs where Algorithm 1 leaves
// negative input-side slacks with headroom to snatch.
TEST_F(AlgorithmTest, SnatchingEngagesOnSlowLatchPipelines) {
  PipelineSpec spec;
  spec.stage_depths = {130, 130};
  spec.width = 1;
  spec.latch_cell = "TLATCH";
  const Design design = make_pipeline(lib_, spec);
  const ClockSet clocks = make_two_phase_clocks(ns(6));
  Hummingbird analyser(design, clocks);
  EXPECT_FALSE(analyser.analyze().works_as_intended);
  const ConstraintSet cs = analyser.generate_constraints();
  EXPECT_GT(cs.backward_snatch_cycles + cs.forward_snatch_cycles, 0);
  // Every node on the critical chain carries a coherent (ready, required)
  // pair with ready recorded.
  std::size_t constrained = 0;
  for (const ConstraintTimes& ct : cs.nodes) {
    if (ct.has_ready && ct.has_required && ct.slack < 0) ++constrained;
  }
  EXPECT_GT(constrained, 100u);  // the long chains are all critical
}

TEST_F(AlgorithmTest, MinPeriodSearchMatchesDirectProbes) {
  PipelineSpec spec;
  spec.stage_depths = {50, 20};
  spec.width = 1;
  const Design design = make_pipeline(lib_, spec);
  const auto factory = [](TimePs p) { return make_two_phase_clocks(p); };

  MinPeriodOptions options;
  options.lo = ns(1);
  options.hi = ns(40);
  const TimePs p = find_min_period(design, factory, options);
  EXPECT_TRUE(works_at_period(design, factory, p, options));
  EXPECT_FALSE(works_at_period(design, factory, p - options.grid, options));

  // Rigid search needs a longer period than transfer-aware search.
  options.rigid = true;
  EXPECT_GT(find_min_period(design, factory, options), p);
}

}  // namespace
}  // namespace hb
