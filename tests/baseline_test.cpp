// Baseline cross-checks:
//   * block-method terminal slacks (the paper's choice) equal exact
//     path-enumeration slacks on networks without false paths;
//   * the rigid-latch (McWilliams-style) baseline is never more permissive
//     than slack-transfer analysis, and coincides with it on designs with
//     only edge-triggered elements.
#include <gtest/gtest.h>

#include "baseline/path_enum.hpp"
#include "baseline/rigid_latch.hpp"
#include "gen/pipeline.hpp"
#include "netlist/builder.hpp"
#include "gen/random_network.hpp"
#include "netlist/stdcells.hpp"
#include "sta/hummingbird.hpp"

namespace hb {
namespace {

class BlockVsPathTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlockVsPathTest, TerminalSlacksAgree) {
  auto lib = make_standard_library();
  RandomNetworkSpec spec;
  spec.seed = GetParam();
  spec.num_clocks = 1 + static_cast<int>(GetParam() % 3);
  spec.banks = 2 + static_cast<int>(GetParam() % 2);
  spec.bank_width = 3;
  spec.gates_per_stage = 10;
  spec.base_period = ns(6) + static_cast<TimePs>((GetParam() * 531) % 8000);
  const RandomNetwork net = make_random_network(lib, spec);

  Hummingbird analyser(net.design, net.clocks);
  analyser.analyze();  // leaves offsets wherever the transfers settled
  const SlackEngine& engine = analyser.engine();

  const PathEnumResult exact = enumerate_path_slacks(engine);
  ASSERT_FALSE(exact.truncated);

  const SyncModel& sync = analyser.sync_model();
  for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
    EXPECT_EQ(engine.capture_slack(SyncId(i)), exact.capture_slack[i])
        << "capture " << sync.at(SyncId(i)).label << " seed " << GetParam();
    EXPECT_EQ(engine.launch_slack(SyncId(i)), exact.launch_slack[i])
        << "launch " << sync.at(SyncId(i)).label << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockVsPathTest,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(PathEnumTest, CountsPathsOnDiamond) {
  // Two reconvergent diamonds in series: 4 distinct paths, enumerated per
  // launch/pass.
  auto lib = make_standard_library();
  TopBuilder b("diamond", lib);
  const NetId clk = b.port_in("clk", true);
  NetId n = b.latch("DFFT", b.port_in("d"), clk, "src");
  for (int stage = 0; stage < 2; ++stage) {
    const NetId u = b.gate("INVX1", {n});
    const NetId v = b.gate("INVX1", {n});
    n = b.gate("NAND2X1", {u, v});
  }
  b.port_out_net("q", b.latch("DFFT", n, clk, "dst"));
  const Design design = b.finish();

  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(10), 0, ns(4));
  Hummingbird analyser(design, clocks);
  analyser.analyze();
  const PathEnumResult exact = enumerate_path_slacks(analyser.engine());
  // From the launch there are 4 paths to dst.D (plus the PI->src.D wire
  // path and dst->PO one): at least 6 endpoint hits in total.
  EXPECT_GE(exact.paths_enumerated, 6u);
  EXPECT_FALSE(exact.truncated);
}

TEST(PathEnumTest, TruncationReported) {
  // 16 diamonds => 2^16 paths; a small cap must truncate.
  auto lib = make_standard_library();
  TopBuilder b("explode", lib);
  const NetId clk = b.port_in("clk", true);
  NetId n = b.latch("DFFT", b.port_in("d"), clk, "src");
  for (int stage = 0; stage < 16; ++stage) {
    const NetId u = b.gate("INVX1", {n});
    const NetId v = b.gate("INVX1", {n});
    n = b.gate("NAND2X1", {u, v});
  }
  b.port_out_net("q", b.latch("DFFT", n, clk, "dst"));
  const Design design = b.finish();
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(50), 0, ns(20));
  Hummingbird analyser(design, clocks);
  analyser.analyze();
  const PathEnumResult exact = enumerate_path_slacks(analyser.engine(), 1000);
  EXPECT_TRUE(exact.truncated);
}

TEST(RigidLatchTest, NeverMorePermissiveThanTransfer) {
  auto lib = make_standard_library();
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RandomNetworkSpec spec;
    spec.seed = seed;
    spec.transparent_prob = 0.8;
    spec.base_period = ns(5) + static_cast<TimePs>((seed * 713) % 6000);
    const RandomNetwork net = make_random_network(lib, spec);

    Hummingbird analyser(net.design, net.clocks);
    const RigidResult rigid =
        rigid_latch_analysis(analyser.sync_model_mut(), analyser.engine_mut());
    const Algorithm1Result transfer = analyser.analyze();

    if (rigid.works_as_intended) {
      EXPECT_TRUE(transfer.works_as_intended) << "seed " << seed;
    }
    EXPECT_GE(transfer.worst_slack, rigid.worst_slack) << "seed " << seed;
  }
}

TEST(RigidLatchTest, CoincidesOnEdgeTriggeredDesigns) {
  auto lib = make_standard_library();
  PipelineSpec spec;
  spec.stage_depths = {30, 30};
  spec.width = 2;
  spec.latch_cell = "DFFT";
  const Design design = make_pipeline(lib, spec);
  const ClockSet clocks = make_two_phase_clocks(ns(8));

  Hummingbird analyser(design, clocks);
  const RigidResult rigid =
      rigid_latch_analysis(analyser.sync_model_mut(), analyser.engine_mut());
  const Algorithm1Result transfer = analyser.analyze();
  EXPECT_EQ(rigid.works_as_intended, transfer.works_as_intended);
  EXPECT_EQ(rigid.worst_slack, transfer.worst_slack);
}

}  // namespace
}  // namespace hb
