// BLIF round-trip differential suite.
//
// Contract: emitting any generator network as BLIF and re-reading it yields
// a design whose analysis is indistinguishable from the in-memory original
// — byte-identical worst-K reports, timing summaries and cached PassResult
// arrays — across thread counts and kernel variants.  The writer/reader
// pair is also a fixpoint: serialising the re-read design reproduces the
// BLIF text exactly.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "netlist/blif_io.hpp"
#include "sta/hummingbird.hpp"
#include "sta/report.hpp"
#include "test_util.hpp"
#include "util/diagnostics.hpp"
#include "util/thread_pool.hpp"

namespace hb {
namespace {

TEST(BlifRoundTripTest, ByteIdenticalReportsOnEveryGeneratorNetwork) {
  for (Workload& w : all_generator_networks()) {
    SCOPED_TRACE(w.name);
    const std::string text = blif_to_string(w.design);
    DiagnosticSink sink;
    Design rt = blif_design_from_string(text, w.design.lib_ptr(), sink);
    ASSERT_FALSE(sink.has_errors()) << sink.to_string();

    EXPECT_EQ(rt.name(), w.design.name());
    EXPECT_EQ(rt.total_cell_count(), w.design.total_cell_count());
    // Writer/reader fixpoint: a second serialisation is byte-identical.
    EXPECT_EQ(blif_to_string(rt), text);

    Hummingbird original(w.design, w.clocks);
    Hummingbird reread(rt, w.clocks);
    original.analyze();
    reread.analyze();
    EXPECT_EQ(reread.report(16), original.report(16));
    EXPECT_EQ(timing_summary(reread.engine()), timing_summary(original.engine()));
    EXPECT_EQ(pass_bytes(reread.engine()), pass_bytes(original.engine()));
  }
}

// The re-read design must stay inside the determinism envelope the parallel
// sweeps guarantee: every {1,8}-thread x {scalar, simd} combination on the
// round-tripped design reproduces the original's serial scalar results to
// the byte (reusing the parallel_sweep byte-comparison helpers).
TEST(BlifRoundTripTest, ByteIdenticalAcrossThreadCountsAndKernels) {
  KernelConfigGuard guard;
  for (Workload& w : all_generator_networks()) {
    SCOPED_TRACE(w.name);
    const std::string text = blif_to_string(w.design);
    const Design rt = blif_design_from_string(text, w.design.lib_ptr());

    set_kernel_mode(KernelMode::kForceScalar);
    set_sweep_tuning(SweepTuning{});
    Hummingbird baseline(w.design, w.clocks);
    baseline.analyze();
    const std::vector<std::uint8_t> want = pass_bytes(baseline.engine());
    const std::string want_report = baseline.report(8);
    ASSERT_FALSE(want.empty());

    set_sweep_tuning(SweepTuning{1, 4});
    for (const KernelMode mode : {KernelMode::kForceScalar, KernelMode::kAuto}) {
      for (const int threads : {1, 8}) {
        SCOPED_TRACE(std::string(mode == KernelMode::kAuto ? "auto" : "scalar") +
                     "/" + std::to_string(threads) + "t");
        set_kernel_mode(mode);
        std::unique_ptr<ThreadPool> pool;
        HummingbirdOptions opt;
        if (threads > 1) {
          pool = std::make_unique<ThreadPool>(threads);
          opt.alg1.pool = pool.get();
        }
        Hummingbird analyser(rt, w.clocks, opt);
        analyser.analyze();
        const std::vector<std::uint8_t> got = pass_bytes(analyser.engine());
        ASSERT_EQ(got.size(), want.size());
        EXPECT_EQ(std::memcmp(got.data(), want.data(), want.size()), 0)
            << "round-tripped PassResult arrays diverged from the original";
        EXPECT_EQ(analyser.report(8), want_report);
      }
    }
  }
}

}  // namespace
}  // namespace hb
