// BLIF frontend corpus tests.
//
// Three layers, mirroring the recovering-parser contract of the native
// netlist format:
//   * malformed-input corpus with *exact* DiagCode / Severity / SourceLoc
//     expectations — the diagnostics are a stable tooling interface;
//   * elaboration semantics: cover canonicalisation onto standard cells,
//     LUT/TIE synthesis, `.latch` -> synchronising-element mapping, implicit
//     clock binding, hierarchy and its failure modes;
//   * checked-in fixture corpus (tests/blif/*.blif) diffed against summary
//     goldens; set HB_UPDATE_GOLDENS=1 to regenerate after intended changes.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "netlist/blif_builder.hpp"
#include "netlist/blif_io.hpp"
#include "netlist/blif_parser.hpp"
#include "netlist/library_io.hpp"
#include "netlist/stdcells.hpp"
#include "netlist/validate.hpp"
#include "sta/hummingbird.hpp"
#include "sta/report.hpp"
#include "util/diagnostics.hpp"

#ifndef HB_BLIF_DIR
#define HB_BLIF_DIR "tests/blif"
#endif

namespace hb {
namespace {

struct DiagExpect {
  DiagCode code;
  Severity severity;
  int line;
  int col;
};

void expect_diags(const DiagnosticSink& sink,
                  const std::vector<DiagExpect>& want) {
  ASSERT_EQ(sink.size(), want.size()) << sink.to_string();
  for (std::size_t i = 0; i < want.size(); ++i) {
    SCOPED_TRACE("diagnostic " + std::to_string(i));
    const Diagnostic& d = sink.all()[i];
    EXPECT_EQ(d.code, want[i].code) << d.to_string();
    EXPECT_EQ(d.severity, want[i].severity) << d.to_string();
    EXPECT_EQ(d.loc.line, want[i].line) << d.to_string();
    EXPECT_EQ(d.loc.col, want[i].col) << d.to_string();
  }
}

// ---------------------------------------------------------------- parser --

TEST(BlifParserTest, AstStructureWithContinuationsAndComments) {
  DiagnosticSink sink;
  const BlifFile file = parse_blif_string(
      ".model m   # trailing comment\n"
      ".inputs a \\\n"
      "  b\n"
      ".clock clk\n"
      ".outputs y\n"
      ".names a b y\n"
      "1- 1\n"
      "-1 1\n"
      ".cname u_or\n"
      ".latch y q re clk 2\n"
      ".end\n",
      sink);
  EXPECT_TRUE(sink.empty()) << sink.to_string();
  ASSERT_EQ(file.models.size(), 1u);
  const BlifModel& m = file.models[0];
  EXPECT_EQ(m.name, "m");
  ASSERT_EQ(m.ports.size(), 4u);
  EXPECT_EQ(m.ports[0].name, "a");
  EXPECT_EQ(m.ports[1].name, "b");
  EXPECT_EQ(m.ports[1].loc.line, 3);  // continuation token keeps its line
  EXPECT_TRUE(m.ports[2].is_clock);
  EXPECT_EQ(m.ports[3].dir, PortDirection::kOutput);
  ASSERT_EQ(m.names.size(), 1u);
  EXPECT_EQ(m.names[0].nets, (std::vector<std::string>{"a", "b", "y"}));
  ASSERT_EQ(m.names[0].cover.size(), 2u);
  EXPECT_EQ(m.names[0].cname, "u_or");
  ASSERT_EQ(m.latches.size(), 1u);
  EXPECT_EQ(m.latches[0].type, BlifLatchType::kRisingEdge);
  EXPECT_EQ(m.latches[0].control, "clk");
  EXPECT_EQ(m.latches[0].init, 2);
  ASSERT_EQ(m.order.size(), 2u);
  EXPECT_EQ(m.order[0].kind, BlifModel::PrimRef::kNames);
  EXPECT_EQ(m.order[1].kind, BlifModel::PrimRef::kLatch);
}

TEST(BlifParserTest, MalformedCorpusExactDiagnostics) {
  struct Case {
    const char* name;
    const char* text;
    std::vector<DiagExpect> want;
  };
  const std::vector<Case> cases = {
      {"empty input", "",
       {{DiagCode::kParseEmptyInput, Severity::kFatal, 0, 0}}},
      {"statement outside model", ".inputs a\n",
       {{DiagCode::kParseStructure, Severity::kError, 1, 1},
        {DiagCode::kParseEmptyInput, Severity::kFatal, 0, 0}}},
      {"model without name", ".model\n.end\n",
       {{DiagCode::kParseSyntax, Severity::kError, 1, 1}}},
      {"bare line outside names", ".model m\n11 1\n.end\n",
       {{DiagCode::kParseSyntax, Severity::kError, 2, 1}}},
      {"unknown directive is a warning", ".model m\n.area 42\n.end\n",
       {{DiagCode::kParseUnknownKeyword, Severity::kWarning, 2, 1}}},
      {"bad latch type", ".model m\n.latch a b xx c 2\n.end\n",
       {{DiagCode::kParseSyntax, Severity::kError, 2, 12}}},
      {"bad latch init", ".model m\n.latch a b 7\n.end\n",
       {{DiagCode::kParseBadNumber, Severity::kError, 2, 12}}},
      {"plane width mismatch", ".model m\n.names a b y\n1 1\n.end\n",
       {{DiagCode::kParseSyntax, Severity::kError, 3, 1}}},
      {"bad plane character", ".model m\n.names a y\nx 1\n.end\n",
       {{DiagCode::kParseSyntax, Severity::kError, 3, 1}}},
      {"bad output value", ".model m\n.names a y\n1 2\n.end\n",
       {{DiagCode::kParseSyntax, Severity::kError, 3, 3}}},
      {"mixed cover outputs", ".model m\n.names a b y\n11 1\n00 0\n.end\n",
       {{DiagCode::kParseSyntax, Severity::kError, 4, 4}}},
      {"duplicate port", ".model m\n.inputs a a\n.end\n",
       {{DiagCode::kParseDuplicateName, Severity::kError, 2, 11}}},
      {"duplicate model", ".model m\n.end\n.model m\n.end\n",
       {{DiagCode::kParseDuplicateName, Severity::kError, 3, 8}}},
      {"missing .end before .model", ".model a\n.model b\n.end\n",
       {{DiagCode::kParseUnterminated, Severity::kError, 2, 1}}},
      {"missing final .end", ".model m\n.inputs a\n",
       {{DiagCode::kParseUnterminated, Severity::kWarning, 2, 0}}},
      {"cname without primitive", ".model m\n.cname x\n.end\n",
       {{DiagCode::kParseStructure, Severity::kError, 2, 1}}},
      {"subckt conn without equals", ".model m\n.gate NAND2X1 A=x B\n.end\n",
       {{DiagCode::kParseSyntax, Severity::kError, 2, 19}}},
      {"names without nets", ".model m\n.names\n.end\n",
       {{DiagCode::kParseSyntax, Severity::kError, 2, 1}}},
      {"constant row with plane", ".model m\n.names y\n1 1\n.end\n",
       {{DiagCode::kParseSyntax, Severity::kError, 3, 1}}},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    DiagnosticSink sink;
    parse_blif_string(c.text, sink);
    expect_diags(sink, c.want);
  }
}

TEST(BlifParserTest, RecoversPastMalformedStatements) {
  // One bad latch must not hide the rest of the model.
  DiagnosticSink sink;
  const BlifFile file = parse_blif_string(
      ".model m\n"
      ".inputs a b\n"
      ".outputs y q\n"
      ".latch a q zz c 2\n"
      ".names a b y\n"
      "11 1\n"
      ".end\n",
      sink);
  EXPECT_EQ(sink.size(), 1u);
  ASSERT_EQ(file.models.size(), 1u);
  EXPECT_EQ(file.models[0].latches.size(), 0u);
  ASSERT_EQ(file.models[0].names.size(), 1u);
  EXPECT_EQ(file.models[0].names[0].cover.size(), 1u);
}

// --------------------------------------------------------------- builder --

std::shared_ptr<const Library> lib() {
  static std::shared_ptr<const Library> l = make_standard_library();
  return l;
}

const Cell& sole_cell(const Design& d, const char* inst) {
  const InstId id = d.top().find_inst(inst);
  EXPECT_TRUE(id.valid()) << "no instance " << inst;
  return d.lib().cell(d.top().inst(id).cell);
}

TEST(BlifBuilderTest, CoverCanonicalisationMatchesStandardCells) {
  DiagnosticSink sink;
  const Design d = blif_design_from_string(
      ".model m\n"
      ".inputs a b c\n"
      ".outputs y0 y1 y2 y3\n"
      ".names a b y0\n"   // ON-set with don't-cares: !a | !b == NAND2
      "0- 1\n"
      "-0 1\n"
      ".names a b y1\n"   // OFF-set form of the same function
      "11 0\n"
      ".names a b c y2\n" // c ? b : a == MUX2 (C is the select)
      "1-0 1\n"
      "-11 1\n"
      ".names a y3\n"
      "0 1\n"
      ".end\n",
      lib(), sink);
  EXPECT_FALSE(sink.has_errors()) << sink.to_string();
  EXPECT_EQ(sole_cell(d, "y0").name(), "NAND2X1");
  EXPECT_EQ(sole_cell(d, "y1").name(), "NAND2X1");
  EXPECT_EQ(sole_cell(d, "y2").name(), "MUX2X1");
  EXPECT_EQ(sole_cell(d, "y3").name(), "INVX1");
}

TEST(BlifBuilderTest, UnmatchedCoversSynthesiseLutAndTieCells) {
  DiagnosticSink sink;
  const Design d = blif_design_from_string(
      ".model m\n"
      ".inputs a b c d\n"
      ".outputs y k0 k1\n"
      ".names a b c d y\n"  // 4-input odd parity: no standard cell
      "1000 1\n0100 1\n0010 1\n0001 1\n"
      "1110 1\n1101 1\n1011 1\n0111 1\n"
      ".names k0\n"         // empty cover: constant 0
      ".names k1\n"
      "1\n"
      ".end\n",
      lib(), sink);
  EXPECT_FALSE(sink.has_errors()) << sink.to_string();
  const Cell& luty = sole_cell(d, "y");
  EXPECT_EQ(luty.name(), "LUT4_6996");
  ASSERT_EQ(luty.arcs().size(), 4u);
  for (const TimingArc& arc : luty.arcs()) EXPECT_EQ(arc.unate, Unate::kNone);
  EXPECT_EQ(sole_cell(d, "k0").name(), "TIE0");
  EXPECT_EQ(sole_cell(d, "k1").name(), "TIE1");
  // The base library is untouched: LUTs land in an extended copy.
  EXPECT_FALSE(lib()->find("LUT4_6996").valid());
  EXPECT_TRUE(d.lib().find("LUT4_6996").valid());
}

TEST(BlifBuilderTest, LatchTypesMapOntoSynchronisingElements) {
  DiagnosticSink sink;
  const Design d = blif_design_from_string(
      ".model m\n"
      ".inputs a\n"
      ".clock clk\n"
      ".outputs q0 q1 q2 q3 q4\n"
      ".latch a q0 fe clk 2\n"
      ".latch a q1 re clk 2\n"
      ".latch a q2 ah clk 2\n"
      ".latch a q3 al clk 2\n"
      ".latch a q4\n"  // untyped: rising-edge, implicit sole clock
      ".end\n",
      lib(), sink);
  EXPECT_FALSE(sink.has_errors()) << sink.to_string();
  EXPECT_EQ(sole_cell(d, "q0").name(), "DFFT");
  EXPECT_EQ(sole_cell(d, "q1").name(), "DFFL");
  EXPECT_EQ(sole_cell(d, "q2").name(), "TLATCH");
  EXPECT_EQ(sole_cell(d, "q3").name(), "TLATCHN");
  EXPECT_EQ(sole_cell(d, "q4").name(), "DFFL");
  // Implicit control is bound to the clock port's net.
  const Module& top = d.top();
  const Instance& q4 = top.inst(top.find_inst("q4"));
  const SyncSpec& sync = sole_cell(d, "q4").sync();
  EXPECT_EQ(top.net(q4.conn[sync.control]).name, "clk");
}

TEST(BlifBuilderTest, BuildStageDiagnostics) {
  {  // unknown library cell in .gate
    DiagnosticSink sink;
    blif_design_from_string(
        ".model m\n.inputs a\n.outputs y\n.gate NOPE A=a Y=y\n.end\n", lib(),
        sink);
    ASSERT_TRUE(sink.has_errors());
    EXPECT_EQ(sink.first_error().code, DiagCode::kParseUnknownName);
    EXPECT_EQ(sink.first_error().loc.line, 4);
  }
  {  // latch with neither control net nor .clock declaration
    DiagnosticSink sink;
    blif_design_from_string(".model m\n.inputs a\n.outputs q\n.latch a q\n.end\n",
                            lib(), sink);
    ASSERT_TRUE(sink.has_errors());
    EXPECT_EQ(sink.first_error().code, DiagCode::kParseUnknownName);
    EXPECT_EQ(sink.first_error().loc.line, 4);
  }
  {  // cover beyond the LUT input cap
    std::string text = ".model m\n.inputs";
    std::string names = ".names";
    for (int i = 0; i < 13; ++i) {
      text += " i" + std::to_string(i);
      names += " i" + std::to_string(i);
    }
    text += "\n.outputs y\n" + names + " y\n.end\n";
    DiagnosticSink sink;
    blif_design_from_string(text, lib(), sink);
    ASSERT_TRUE(sink.has_errors());
    EXPECT_EQ(sink.first_error().code, DiagCode::kParseStructure);
    EXPECT_EQ(sink.first_error().loc.line, 4);
  }
  {  // hierarchy cycle: the back edge is skipped with a diagnostic
    DiagnosticSink sink;
    blif_design_from_string(
        ".model a\n.inputs x\n.outputs y\n.subckt b x=x y=y\n.end\n"
        ".model b\n.inputs x\n.outputs y\n.subckt a x=x y=y\n.end\n",
        lib(), sink);
    ASSERT_TRUE(sink.has_errors());
    bool cycle = false;
    for (const Diagnostic& d : sink.all()) {
      cycle = cycle || (d.code == DiagCode::kParseStructure &&
                        d.message.find("cycle") != std::string::npos);
    }
    EXPECT_TRUE(cycle) << sink.to_string();
  }
}

TEST(BlifBuilderTest, SubcktResolvesSiblingModelThenLibrary) {
  DiagnosticSink sink;
  const Design d = blif_design_from_string(
      ".model top\n"
      ".inputs a b\n"
      ".outputs y\n"
      ".subckt pair A=a B=b Y=t\n"
      ".cname u_sub\n"
      ".subckt INVX2 A=t Y=y\n"  // no model named INVX2: library fallback
      ".end\n"
      ".model pair\n"
      ".inputs A B\n"
      ".outputs Y\n"
      ".gate AND2X1 A=A B=B Y=Y\n"
      ".end\n",
      lib(), sink);
  EXPECT_FALSE(sink.has_errors()) << sink.to_string();
  const Module& top = d.top();
  const InstId sub = top.find_inst("u_sub");
  ASSERT_TRUE(sub.valid());
  EXPECT_FALSE(top.inst(sub).is_cell());
  EXPECT_EQ(d.module(top.inst(sub).module).name(), "pair");
  EXPECT_EQ(sole_cell(d, "y").name(), "INVX2");
  const ValidationReport report = validate(d);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// `.gate` names written against a real liberty library ("nand2_x1",
// "INV_X1", a bare family name) resolve against a *loadable* library — the
// standard cells round-tripped through the library text format — with one
// warning diagnostic per substitution; a name with no alias still errors.
TEST(BlifBuilderTest, GateResolvesLibertyStyleNamesAgainstLoadableLibrary) {
  const auto loaded = library_from_string(library_to_string(*lib()));
  ASSERT_NE(loaded, nullptr);

  DiagnosticSink sink;
  const Design d = blif_design_from_string(
      ".model m\n"
      ".inputs a b\n"
      ".outputs y\n"
      ".gate nand2_x1 A=a B=b Y=t1\n"
      ".gate INV_X1 A=t1 Y=t2\n"
      ".gate BUF A=t2 Y=y\n"
      ".end\n",
      loaded, sink);
  ASSERT_FALSE(sink.has_errors()) << sink.to_string();
  ASSERT_EQ(sink.size(), 3u) << sink.to_string();
  for (const Diagnostic& diag : sink.all()) {
    EXPECT_EQ(diag.code, DiagCode::kParseUnknownName);
    EXPECT_EQ(diag.severity, Severity::kWarning);
    EXPECT_NE(diag.message.find("liberty-style alias"), std::string::npos);
  }
  EXPECT_EQ(sole_cell(d, "t1").name(), "NAND2X1");
  EXPECT_EQ(sole_cell(d, "t2").name(), "INVX1");
  EXPECT_EQ(sole_cell(d, "y").name(), "BUFX1");  // bare family -> weakest
  const ValidationReport report = validate(d);
  EXPECT_TRUE(report.ok()) << report.to_string();

  DiagnosticSink bad;
  blif_design_from_string(
      ".model m\n.inputs a\n.outputs y\n.gate nandx_x9 A=a Y=y\n.end\n",
      loaded, bad);
  ASSERT_TRUE(bad.has_errors());
  EXPECT_EQ(bad.first_error().code, DiagCode::kParseUnknownName);
  EXPECT_EQ(bad.first_error().loc.line, 4);
}

TEST(BlifIoTest, PathDetection) {
  EXPECT_TRUE(is_blif_path("foo.blif"));
  EXPECT_TRUE(is_blif_path("FOO.BLIF"));
  EXPECT_FALSE(is_blif_path("foo.net"));
  EXPECT_FALSE(is_blif_path("blif"));
}

// -------------------------------------------------------------- fixtures --

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << "cannot open " << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

TEST(BlifFixtureTest, CorpusMatchesSummaryGoldens) {
  const bool update = std::getenv("HB_UPDATE_GOLDENS") != nullptr;
  for (const char* name :
       {"comb", "latched", "multi_model", "single_node"}) {
    SCOPED_TRACE(name);
    const std::string base = std::string(HB_BLIF_DIR) + "/" + name;
    std::ifstream is(base + ".blif");
    ASSERT_TRUE(is.good()) << "missing fixture " << base << ".blif";
    DiagnosticSink sink;
    Design design = load_blif(is, lib(), sink);
    ASSERT_FALSE(sink.has_errors()) << sink.to_string();

    bool has_clock_port = false;
    for (const ModulePort& p : design.top().ports()) {
      has_clock_port = has_clock_port || p.is_clock;
    }
    ClockSet clocks;
    if (has_clock_port) {
      clocks = default_blif_clocks(design, ns(10));
    } else {
      clocks.add_simple_clock("clk", ns(10), 0, ns(5));
    }

    Hummingbird hb(design, clocks);
    hb.analyze();
    const std::string got = hb.report(4);
    const std::string golden_path = base + ".golden";
    if (update) {
      std::ofstream os(golden_path);
      os << got;
      continue;
    }
    EXPECT_EQ(got, read_file(golden_path))
        << "run with HB_UPDATE_GOLDENS=1 to regenerate";
  }
}

}  // namespace
}  // namespace hb
