// Timing-spec file parsing and round-tripping.
#include <gtest/gtest.h>

#include "clocks/clock_io.hpp"

namespace hb {
namespace {

TEST(ParseTimeTest, UnitsAndDecimals) {
  EXPECT_EQ(parse_time("250"), 250);
  EXPECT_EQ(parse_time("250ps"), 250);
  EXPECT_EQ(parse_time("3ns"), 3000);
  EXPECT_EQ(parse_time("2.5ns"), 2500);
  EXPECT_EQ(parse_time("0.001us"), 1000);
  EXPECT_EQ(parse_time("-1.5ns"), -1500);
}

TEST(ParseTimeTest, RejectsGarbage) {
  EXPECT_THROW(parse_time(""), Error);
  EXPECT_THROW(parse_time("ns"), Error);
  EXPECT_THROW(parse_time("3ms"), Error);
  EXPECT_THROW(parse_time("fast"), Error);
}

TEST(TimingSpecTest, ParsesClocksAndPorts) {
  const TimingSpec spec = timing_spec_from_string(
      "# demo spec\n"
      "clock phi1 period 20ns pulse 0 8ns\n"
      "clock phi2 period 10ns pulse 2ns 6ns\n"
      "\n"
      "input d arrival 3ns offset 100ps\n"
      "output q required 18ns offset -250ps\n");
  EXPECT_EQ(spec.clocks.num_clocks(), 2u);
  EXPECT_EQ(spec.clocks.overall_period(), ns(20));
  const Clock& phi1 = spec.clocks.clock(spec.clocks.find("phi1"));
  ASSERT_EQ(phi1.pulses.size(), 1u);
  EXPECT_EQ(phi1.pulses[0].fall, ns(8));
  ASSERT_EQ(spec.input_arrivals.size(), 1u);
  EXPECT_EQ(spec.input_arrivals[0].port, "d");
  EXPECT_EQ(spec.input_arrivals[0].time, ns(3));
  EXPECT_EQ(spec.input_arrivals[0].offset, ps(100));
  ASSERT_EQ(spec.output_requireds.size(), 1u);
  EXPECT_EQ(spec.output_requireds[0].offset, ps(-250));
}

TEST(TimingSpecTest, MultiPulseClock) {
  const TimingSpec spec = timing_spec_from_string(
      "clock c period 20ns pulse 0 4ns pulse 10ns 16ns\n");
  const Clock& c = spec.clocks.clock(ClockId(0));
  ASSERT_EQ(c.pulses.size(), 2u);
  EXPECT_EQ(c.pulses[1].rise, ns(10));
}

TEST(TimingSpecTest, ErrorsCarryLineNumbers) {
  try {
    timing_spec_from_string("clock a period 10ns pulse 0 4ns\nbogus line\n");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(TimingSpecTest, RejectsMalformedStatements) {
  EXPECT_THROW(timing_spec_from_string("clock a period 10ns\n"), Error);
  EXPECT_THROW(timing_spec_from_string("clock a period 10ns pulse 0\n"), Error);
  EXPECT_THROW(timing_spec_from_string("input d required 3ns\n"), Error);
  EXPECT_THROW(timing_spec_from_string("output q arrival 3ns\n"), Error);
  EXPECT_THROW(timing_spec_from_string("clock a period 10ns pulse 8ns 4ns\n"),
               Error);  // fall before rise, caught by ClockSet
}

TEST(TimingSpecTest, RoundTrip) {
  const char* text =
      "clock phi1 period 20ns pulse 0 8ns\n"
      "clock phi2 period 10ns pulse 2ns 6ns\n"
      "input d arrival 3ns offset 100ps\n"
      "output q required 18ns offset -250ps\n";
  const TimingSpec spec = timing_spec_from_string(text);
  const std::string emitted = timing_spec_to_string(spec);
  const TimingSpec again = timing_spec_from_string(emitted);
  EXPECT_EQ(timing_spec_to_string(again), emitted);
  EXPECT_EQ(again.clocks.overall_period(), ns(20));
  EXPECT_EQ(again.input_arrivals[0].offset, ps(100));
}

}  // namespace
}  // namespace hb
