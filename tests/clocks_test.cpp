#include <gtest/gtest.h>

#include "clocks/edge_graph.hpp"
#include "clocks/waveform.hpp"

namespace hb {
namespace {

TEST(WaveformTest, OverallPeriodIsLcm) {
  ClockSet clocks;
  clocks.add_simple_clock("a", ns(20), 0, ns(5));
  clocks.add_simple_clock("b", ns(30), 0, ns(10));
  EXPECT_EQ(clocks.overall_period(), ns(60));
}

TEST(WaveformTest, RejectsMalformedWaveforms) {
  ClockSet clocks;
  EXPECT_THROW(clocks.add_simple_clock("a", ns(10), ns(5), ns(5)), Error);  // zero width
  EXPECT_THROW(clocks.add_simple_clock("b", ns(10), ns(8), ns(12)), Error); // beyond period
  EXPECT_THROW(clocks.add_simple_clock("c", 0, 0, 0), Error);
  clocks.add_simple_clock("d", ns(10), 0, ns(4));
  EXPECT_THROW(clocks.add_simple_clock("d", ns(10), 0, ns(4)), Error);  // duplicate
  EXPECT_THROW(clocks.add_clock("e", ns(10),
                                {ClockPulse{0, ns(4)}, ClockPulse{ns(3), ns(6)}}),
               Error);  // overlap
  EXPECT_THROW(clocks.add_clock("f", ns(10), {ClockPulse{0, ns(10)}}), Error);
}

TEST(WaveformTest, EdgesOfDoubleRateClockInOverallPeriod) {
  ClockSet clocks;
  clocks.add_simple_clock("slow", ns(40), 0, ns(10));
  clocks.add_simple_clock("fast", ns(20), ns(2), ns(8));
  const auto edges = clocks.edges_in_overall_period();
  // slow: 2 edges; fast: 2 pulses x 2 edges = 4.
  ASSERT_EQ(edges.size(), 6u);
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end(),
                             [](const ClockEdge& a, const ClockEdge& b) {
                               return a.time < b.time;
                             }));
  int fast_edges = 0;
  for (const ClockEdge& e : edges) {
    if (clocks.clock(e.clock).name == "fast") ++fast_edges;
  }
  EXPECT_EQ(fast_edges, 4);
}

TEST(WaveformTest, HighAndLowIntervals) {
  ClockSet clocks;
  const ClockId id = clocks.add_simple_clock("c", ns(20), ns(4), ns(12));
  const auto highs = clocks.high_intervals(id);
  ASSERT_EQ(highs.size(), 1u);
  EXPECT_EQ(highs[0].lead, ns(4));
  EXPECT_EQ(highs[0].trail, ns(12));
  const auto lows = clocks.low_intervals(id);
  ASSERT_EQ(lows.size(), 1u);
  // The low interval wraps: from the fall at 12ns to the next rise at 24ns.
  EXPECT_EQ(lows[0].lead, ns(12));
  EXPECT_EQ(lows[0].trail, ns(24));
  EXPECT_EQ(lows[0].width(), ns(12));
}

TEST(WaveformTest, LowIntervalsOfMultiPulseClock) {
  ClockSet clocks;
  const ClockId id =
      clocks.add_clock("c", ns(20), {ClockPulse{ns(2), ns(6)}, ClockPulse{ns(10), ns(14)}});
  const auto lows = clocks.low_intervals(id);
  ASSERT_EQ(lows.size(), 2u);
  EXPECT_EQ(lows[0].lead, ns(6));
  EXPECT_EQ(lows[0].trail, ns(10));
  EXPECT_EQ(lows[1].lead, ns(14));
  EXPECT_EQ(lows[1].trail, ns(22));  // wraps to the rise at 2ns next period
}

TEST(WaveformTest, FindByName) {
  ClockSet clocks;
  clocks.add_simple_clock("phi1", ns(10), 0, ns(3));
  EXPECT_TRUE(clocks.find("phi1").valid());
  EXPECT_FALSE(clocks.find("phi9").valid());
  EXPECT_THROW(ClockSet{}.overall_period(), Error);
}

// ---------------------------------------------------------------------------
// ClockEdgeGraph

TEST(EdgeGraphTest, NodesSortedAndDeduplicated) {
  ClockEdgeGraph g({ns(5), ns(1), ns(5), ns(9)}, ns(10));
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.node_time(0), ns(1));
  EXPECT_EQ(g.node_at(ns(9)), 2u);
  EXPECT_THROW(g.node_at(ns(2)), Error);
}

TEST(EdgeGraphTest, LinearizationMapsAssertAndClose) {
  ClockEdgeGraph g({0, ns(4)}, ns(10));
  const std::size_t b = g.node_at(ns(4));
  EXPECT_EQ(g.linear_assert(ns(4), b), 0);
  EXPECT_EQ(g.linear_assert(ns(6), b), ns(2));
  EXPECT_EQ(g.linear_assert(0, b), ns(6));
  // Closure at the break itself maps to a full period.
  EXPECT_EQ(g.linear_close(ns(4), b), ns(10));
  EXPECT_EQ(g.linear_close(ns(6), b), ns(2));
}

TEST(EdgeGraphTest, SameEdgeRequirementForcesBreakAtThatEdge) {
  ClockEdgeGraph g({0, ns(4), ns(7)}, ns(10));
  g.add_requirement(ns(4), ns(4));
  const auto allowed = g.allowed_breaks(ns(4), ns(4));
  ASSERT_EQ(allowed.size(), 1u);
  EXPECT_EQ(allowed[0], g.node_at(ns(4)));
  const auto breaks = g.solve_min_breaks();
  ASSERT_EQ(breaks.size(), 1u);
  EXPECT_EQ(breaks[0], g.node_at(ns(4)));
}

// The paper's Figure 4 example: edges A..H; the requirement "E before C" is
// satisfied by removing the arc D->E (break at E), after which the order is
// E F G H A B C D.
TEST(EdgeGraphTest, PaperFigure4Example) {
  // Eight edges at arbitrary increasing times; call them A..H at 0..7.
  std::vector<TimePs> times{0, 1, 2, 3, 4, 5, 6, 7};
  ClockEdgeGraph g(times, 8);
  const TimePs E = 4, C = 2;
  g.add_requirement(E, C);  // "edge E occur before edge C"

  const auto allowed = g.allowed_breaks(E, C);
  // Allowed breaks are the cyclic segment [C .. E] = {C, D, E}.
  EXPECT_EQ(allowed, (std::vector<std::size_t>{2, 3, 4}));

  // Breaking at E: assertion E maps to 0, closure C maps to 6 — E before C.
  const std::size_t at_e = g.node_at(E);
  EXPECT_LT(g.linear_assert(E, at_e), g.linear_close(C, at_e));
  // Breaking at F (=5) must violate the requirement.
  const std::size_t at_f = g.node_at(5);
  EXPECT_GE(g.linear_assert(E, at_f), g.linear_close(C, at_f));
}

TEST(EdgeGraphTest, NoRequirementsNeedOnePass) {
  ClockEdgeGraph g({0, ns(5)}, ns(10));
  EXPECT_EQ(g.solve_min_breaks().size(), 1u);
}

TEST(EdgeGraphTest, TwoDisjointRequirementsNeedTwoPasses) {
  // Figure 1-style: launches at 0 and 20 paired with closures at 16 and 36
  // crosswise, forcing two passes.
  ClockEdgeGraph g({0, ns(16), ns(20), ns(36)}, ns(40));
  g.add_requirement(0, ns(36));
  g.add_requirement(ns(20), ns(16));
  const auto breaks = g.solve_min_breaks();
  EXPECT_EQ(breaks.size(), 2u);
}

TEST(EdgeGraphTest, SolveIsMinimalOnSatisfiableSingleBreak) {
  ClockEdgeGraph g({0, ns(2), ns(5), ns(8)}, ns(10));
  g.add_requirement(0, ns(5));     // break in [5 .. 0] = {5, 8, 0}
  g.add_requirement(ns(2), ns(5)); // break in [5 .. 2] = {5, 8, 0, 2}
  // A single break from the intersection {5, 8, 0} suffices.
  const auto breaks = g.solve_min_breaks();
  ASSERT_EQ(breaks.size(), 1u);
  const TimePs t = g.node_time(breaks[0]);
  EXPECT_TRUE(t == 0 || t == ns(5) || t == ns(8)) << t;
}

TEST(EdgeGraphTest, DuplicateRequirementsIgnored) {
  ClockEdgeGraph g({0, ns(5)}, ns(10));
  g.add_requirement(0, ns(5));
  g.add_requirement(0, ns(5));
  EXPECT_EQ(g.num_requirements(), 1u);
}

// Property: for every requirement, allowed breaks place the closure at
// position >= T - dist(close, assert) and disallowed breaks strictly lower —
// the invariant behind per-output pass assignment.
TEST(EdgeGraphTest, PassAssignmentInvariant) {
  const TimePs T = ns(24);
  std::vector<TimePs> times{0, ns(3), ns(7), ns(10), ns(14), ns(19)};
  ClockEdgeGraph g(times, T);
  for (TimePs a : times) {
    for (TimePs c : times) {
      const TimePs threshold = T - mod_period(a - c, T);
      const auto allowed = g.allowed_breaks(a, c);
      for (std::size_t v = 0; v < g.num_nodes(); ++v) {
        const bool is_allowed =
            std::find(allowed.begin(), allowed.end(), v) != allowed.end();
        const TimePs pos = g.linear_close(c, v);
        if (is_allowed) {
          EXPECT_GE(pos, threshold) << "a=" << a << " c=" << c << " v=" << v;
          EXPECT_LT(g.linear_assert(a, v), pos);
        } else {
          EXPECT_LT(pos, threshold) << "a=" << a << " c=" << c << " v=" << v;
        }
      }
    }
  }
}

}  // namespace
}  // namespace hb
