// Multi-corner scenario engine differentials (docs/SCENARIOS.md).
//
// The load-bearing contract: a K=1 identity CornerSet run through
// CornerAnalysis is byte-identical — cached PassResult buffers, report
// text, slacks and hold pairs — to the legacy single-corner engine, on
// every generator network, at every thread count and kernel variant.  On
// top of that the suite pins the cross-corner merge tie-break (equal worst
// slack resolves to the lowest corner index), holds incremental update()
// bit-exact against a fresh compute() per corner, exercises the
// kCornerLaneCorrupt fault site through the self-check/self-heal path, and
// covers the recovering corner-spec parser's diagnostics.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "scenario/corner_analysis.hpp"
#include "sta/hummingbird.hpp"
#include "test_util.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/thread_pool.hpp"

namespace hb {
namespace {

/// Raw bytes of every cached K-lane pass, mirroring pass_bytes() but over
/// the corner orchestrator's cache (flat_size() spans all lanes).
std::vector<std::uint8_t> corner_pass_bytes(const CornerAnalysis& ca) {
  std::vector<std::uint8_t> out;
  const auto append = [&out](const PassSide& side) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(side.data());
    out.insert(out.end(), p, p + side.flat_size() * sizeof(RiseFall));
  };
  const SlackEngine& engine = ca.engine();
  for (std::uint32_t c = 0; c < engine.clusters().num_clusters(); ++c) {
    for (std::size_t p = 0; p < engine.num_passes(ClusterId(c)); ++p) {
      const CornerPassResult& res = ca.cached_pass(ClusterId(c), p);
      append(res.ready);
      append(res.required);
    }
  }
  return out;
}

CornerSet three_corners() {
  CornerSet cs;
  cs.add(Corner{"typical", kIdentityPm, kIdentityPm, {}});
  cs.add(Corner{"slow", 1250, 1300, {{"NAND2X1", 1400}}});
  cs.add(Corner{"fast", 800, 780, {}});
  return cs;
}

// Satellite 1: the K=1 identity run reproduces the legacy engine byte for
// byte — PassResult buffers and the report string — across {1,8} threads ×
// {forced-scalar, auto/AVX2}, on every generator network.
TEST(CornerTest, IdentityKOneMatchesLegacyByteForByte) {
  KernelConfigGuard guard;
  for (Workload& w : all_generator_networks()) {
    SCOPED_TRACE(w.name);

    set_kernel_mode(KernelMode::kForceScalar);
    set_sweep_tuning(SweepTuning{});
    Hummingbird baseline(w.design, w.clocks);
    baseline.analyze();
    const std::vector<std::uint8_t> want = pass_bytes(baseline.engine());
    const std::string want_report = baseline.report(8);
    const auto want_hold = baseline.check_hold_times(0);
    ASSERT_FALSE(want.empty());

    set_sweep_tuning(SweepTuning{1, 4});  // force the level-parallel path
    for (const KernelMode mode : {KernelMode::kForceScalar, KernelMode::kAuto}) {
      for (const int threads : {1, 8}) {
        SCOPED_TRACE(std::string(mode == KernelMode::kAuto ? "auto" : "scalar") +
                     "/" + std::to_string(threads) + "t");
        set_kernel_mode(mode);
        std::unique_ptr<ThreadPool> pool;
        HummingbirdOptions opt;
        if (threads > 1) {
          pool = std::make_unique<ThreadPool>(threads);
          opt.alg1.pool = pool.get();
        }
        Hummingbird analyser(w.design, w.clocks, opt);
        analyser.analyze();
        CornerAnalysis ca(analyser.engine(), CornerSet::identity());
        ca.compute(pool.get());

        const std::vector<std::uint8_t> got = corner_pass_bytes(ca);
        ASSERT_EQ(got.size(), want.size());
        EXPECT_EQ(std::memcmp(got.data(), want.data(), want.size()), 0)
            << "K=1 identity lane diverged from the legacy PassResult bytes";
        EXPECT_EQ(ca.report(0, 8), want_report);
        EXPECT_EQ(ca.worst_terminal_slack(0),
                  baseline.engine().worst_terminal_slack());

        const auto hold = ca.check_hold_times(0, 0, pool.get());
        ASSERT_EQ(hold.size(), want_hold.size());
        for (std::size_t i = 0; i < hold.size(); ++i) {
          EXPECT_EQ(hold[i].launch, want_hold[i].launch);
          EXPECT_EQ(hold[i].capture, want_hold[i].capture);
          EXPECT_EQ(hold[i].margin, want_hold[i].margin);
        }
      }
    }
  }
}

// Derates act in the right direction: the slow corner can only lose slack
// against typical, the fast corner can only gain it, and the merged worst
// comes from the slow corner with its index attached.
TEST(CornerTest, DeratesShiftSlackMonotonically) {
  for (Workload& w : all_generator_networks()) {
    SCOPED_TRACE(w.name);
    Hummingbird analyser(w.design, w.clocks);
    analyser.analyze();
    CornerAnalysis ca(analyser.engine(), three_corners());
    ca.compute();

    const TimePs typical = ca.worst_terminal_slack(0);
    const TimePs slow = ca.worst_terminal_slack(1);
    const TimePs fast = ca.worst_terminal_slack(2);
    EXPECT_EQ(typical, analyser.engine().worst_terminal_slack());
    EXPECT_LE(slow, typical);
    EXPECT_GE(fast, typical);

    const MergedSlack merged = ca.merged_worst_slack();
    EXPECT_EQ(merged.slack, std::min({typical, slow, fast}));
    EXPECT_EQ(merged.slack, ca.worst_terminal_slack(merged.corner));
  }
}

// Satellite 2: equal worst slack across corners resolves to the lowest
// corner index, and merged path enumeration interleaves deterministically
// by (slack, corner index, capture id).  Two byte-identical corners make
// every slack a tie, so the merge order is pure tie-break.
TEST(CornerTest, CrossCornerTieBreakPrefersLowestIndex) {
  for (Workload& w : all_generator_networks()) {
    SCOPED_TRACE(w.name);
    Hummingbird analyser(w.design, w.clocks);
    analyser.analyze();

    CornerSet twins;
    twins.add(Corner{"a", 1150, 1150, {}});
    twins.add(Corner{"b", 1150, 1150, {}});
    CornerAnalysis ca(analyser.engine(), twins);
    ca.compute();

    ASSERT_EQ(ca.worst_terminal_slack(0), ca.worst_terminal_slack(1));
    EXPECT_EQ(ca.merged_worst_slack().corner, 0u);

    const SyncModel& sync = analyser.sync_model();
    for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
      const SyncId id(i);
      EXPECT_EQ(ca.merged_launch_slack(id).corner, 0u);
      EXPECT_EQ(ca.merged_capture_slack(id).corner, 0u);
    }

    const std::vector<CornerPath> merged = ca.merged_slow_paths(16);
    for (std::size_t i = 1; i < merged.size(); ++i) {
      const CornerPath& prev = merged[i - 1];
      const CornerPath& cur = merged[i];
      ASSERT_LE(prev.path.slack, cur.path.slack) << "paths not worst-first";
      if (prev.path.slack == cur.path.slack &&
          prev.path.capture == cur.path.capture) {
        EXPECT_LT(prev.corner, cur.corner)
            << "equal-slack twin paths must order by corner index";
      }
    }
  }
}

// The incremental contract, lane-wise: after an offset shift, update()
// reproduces a from-scratch compute() bit for bit in every corner, serial
// and pooled.
TEST(CornerTest, IncrementalUpdateMatchesFreshCompute) {
  KernelConfigGuard guard;
  set_kernel_mode(KernelMode::kAuto);
  set_sweep_tuning(SweepTuning{1, 4});

  for (Workload& w : all_generator_networks()) {
    SCOPED_TRACE(w.name);
    ThreadPool pool(8);
    HummingbirdOptions opt;
    opt.alg1.pool = &pool;
    Hummingbird analyser(w.design, w.clocks, opt);
    analyser.analyze();

    CornerAnalysis ca(analyser.engine(), three_corners());
    ca.compute(&pool);

    SyncModel& sync = analyser.sync_model_mut();
    bool shifted = false;
    for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
      SyncInstance& si = sync.at_mut(SyncId(i));
      if (si.transparent && !si.is_virtual && si.max_increase() >= 2) {
        si.shift(2);
        shifted = true;
        break;
      }
    }
    if (!shifted) continue;  // no movable offset in this network

    const std::vector<SyncId> changed = sync.drain_changed_offsets();
    ca.invalidate_offsets(changed);
    ca.update(&pool);
    const std::vector<std::uint8_t> incremental = corner_pass_bytes(ca);

    // Fresh parallel compute and fresh serial compute close the triangle.
    CornerAnalysis fresh(analyser.engine(), three_corners());
    fresh.compute(&pool);
    EXPECT_EQ(corner_pass_bytes(fresh), incremental);
    CornerAnalysis serial(analyser.engine(), three_corners());
    serial.compute();
    EXPECT_EQ(corner_pass_bytes(serial), incremental);
    for (std::size_t k = 0; k < 3; ++k) {
      EXPECT_EQ(ca.worst_terminal_slack(k), serial.worst_terminal_slack(k));
    }
  }
}

// Satellite 3 (fault site): a kCornerLaneCorrupt fault poisons one lane of
// one cached K-lane entry after checksumming; verify_cache() detects it,
// drops the cache, and the next update() self-heals bit-identically.
TEST(CornerTest, LaneCorruptionDetectedAndSelfHealed) {
  auto workloads = all_generator_networks();
  Workload& w = workloads.front();
  Hummingbird analyser(w.design, w.clocks);
  analyser.analyze();

  CornerAnalysis clean(analyser.engine(), three_corners());
  clean.compute();
  const std::vector<std::uint8_t> clean_bytes = corner_pass_bytes(clean);

  CornerAnalysis ca(analyser.engine(), three_corners());
  {
    FaultInjector::Config cfg;
    cfg.seed = 42;
    cfg.probability[static_cast<int>(FaultSite::kCornerLaneCorrupt)] = 1.0;
    FaultInjector::Scope scope(cfg);
    ca.compute();  // one lane is perturbed after its checksum was taken
    EXPECT_FALSE(ca.verify_cache());
    EXPECT_GT(FaultInjector::instance().fire_count(
                  FaultSite::kCornerLaneCorrupt),
              0u);
  }
  // verify_cache dropped the poisoned cache; update() recomputes clean.
  ca.update();
  EXPECT_TRUE(ca.verify_cache());
  EXPECT_EQ(corner_pass_bytes(ca), clean_bytes);

  // Continuous corruption under paranoid self-check still converges: every
  // write is poisoned, every read self-heals, the answer never drifts.
  CornerAnalysis paranoid(analyser.engine(), three_corners());
  paranoid.set_self_check(true);
  {
    FaultInjector::Config cfg;
    cfg.seed = 5;
    cfg.probability[static_cast<int>(FaultSite::kCornerLaneCorrupt)] = 1.0;
    FaultInjector::Scope scope(cfg);
    paranoid.compute();
    paranoid.invalidate_all();
    paranoid.update();
  }
  paranoid.verify_cache();
  paranoid.update();
  EXPECT_EQ(corner_pass_bytes(paranoid), clean_bytes);
}

// ---- Corner-spec parser ---------------------------------------------------

TEST(CornerSpecTest, ParsesFullSpec) {
  const std::string text =
      "# three-corner sign-off set\n"
      "corner typical 1000\n"
      "corner slow 1250\n"
      "wire slow 1300\n"
      "cell slow NAND2X1 1400\n"
      "corner fast 800\n"
      "wire fast 780\n";
  DiagnosticSink sink;
  const CornerSet set = parse_corner_spec(text, sink);
  EXPECT_TRUE(sink.empty()) << sink.to_string();
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(set.corner(0).name, "typical");
  EXPECT_TRUE(set.corner(0).is_identity());
  EXPECT_EQ(set.corner(1).derate_pm, 1250u);
  EXPECT_EQ(set.corner(1).wire_pm, 1300u);
  EXPECT_EQ(set.corner(1).cell_factor("NAND2X1"), 1400u);
  EXPECT_EQ(set.corner(1).cell_factor("INVX1"), 1250u);
  EXPECT_EQ(set.corner(2).derate_pm, 800u);
  EXPECT_EQ(set.corner(2).wire_pm, 780u);
  EXPECT_EQ(set.find("fast"), 2u);
  EXPECT_EQ(set.find("nope"), CornerSet::npos);
  EXPECT_FALSE(set.all_identity());
}

// The recovering parser diagnoses each malformed statement with a DiagCode
// and SourceLoc, resynchronises at the next line, and keeps what parsed.
TEST(CornerSpecTest, RecoversWithStructuredDiagnostics) {
  const std::string text =
      "corner slow 125%\n"          // bad number
      "corner slow 1250\n"          // ok
      "corner slow 1300\n"          // duplicate name
      "wire ghost 1100\n"           // unknown corner
      "cell slow NAND2X1\n"         // arity
      "voltage slow 1.1\n"          // unknown keyword
      "wire slow 1300\n";           // ok
  DiagnosticSink sink;
  const CornerSet set = parse_corner_spec(text, sink);
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.corner(0).derate_pm, 1250u);
  EXPECT_EQ(set.corner(0).wire_pm, 1300u);

  ASSERT_EQ(sink.size(), 5u) << sink.to_string();
  EXPECT_EQ(sink.all()[0].code, DiagCode::kParseBadNumber);
  EXPECT_EQ(sink.all()[0].loc.line, 1);
  EXPECT_EQ(sink.all()[1].code, DiagCode::kParseDuplicateName);
  EXPECT_EQ(sink.all()[2].code, DiagCode::kParseUnknownName);
  EXPECT_EQ(sink.all()[3].code, DiagCode::kParseSyntax);
  EXPECT_EQ(sink.all()[4].code, DiagCode::kParseUnknownKeyword);
  EXPECT_EQ(sink.all()[4].loc.line, 6);
}

TEST(CornerSpecTest, EmptyAndFailFastBehaviour) {
  DiagnosticSink sink;
  parse_corner_spec("# only comments\n\n", sink);
  ASSERT_TRUE(sink.has_errors());
  EXPECT_EQ(sink.all()[0].code, DiagCode::kParseEmptyInput);

  EXPECT_THROW(parse_corner_spec_or_throw(""), Error);
  EXPECT_THROW(parse_corner_spec_or_throw("corner x 0\n"), Error);
  EXPECT_THROW(parse_corner_spec_or_throw("corner x 999999\n"), Error);
  EXPECT_NO_THROW(parse_corner_spec_or_throw("corner x 1\ncorner y 100000\n"));
}

}  // namespace
}  // namespace hb
