// Coverage for corner paths not exercised elsewhere: the hitting-set greedy
// fallback, deep hierarchy flattening, custom wire-load models, the enable
// margin option, and large-design netlist round trips.
#include <gtest/gtest.h>

#include "clocks/edge_graph.hpp"
#include "gen/des.hpp"
#include "netlist/builder.hpp"
#include "netlist/flatten.hpp"
#include "netlist/netlist_io.hpp"
#include "netlist/stdcells.hpp"
#include "netlist/validate.hpp"
#include "sta/hummingbird.hpp"

namespace hb {
namespace {

TEST(EdgeGraphFallbackTest, GreedyCoversWhenMinimumExceedsFour) {
  // Five disjoint two-node segments force a hitting set of size 5, beyond
  // the exhaustive limit: the greedy fallback must still cover everything.
  std::vector<TimePs> times;
  for (int i = 0; i < 10; ++i) times.push_back(ns(i + 1));
  ClockEdgeGraph g(times, ns(20));
  for (int k = 0; k < 5; ++k) {
    g.add_requirement(ns(2 * k + 2), ns(2 * k + 1));  // allowed = {2k+1, 2k+2}
  }
  const auto breaks = g.solve_min_breaks();
  EXPECT_EQ(breaks.size(), 5u);
  // Verify coverage directly.
  for (int k = 0; k < 5; ++k) {
    const auto allowed = g.allowed_breaks(ns(2 * k + 2), ns(2 * k + 1));
    bool hit = false;
    for (std::size_t v : breaks) {
      if (std::find(allowed.begin(), allowed.end(), v) != allowed.end()) hit = true;
    }
    EXPECT_TRUE(hit) << "requirement " << k;
  }
}

TEST(FlattenTest, ThreeLevelsOfHierarchy) {
  auto lib = make_standard_library();
  TopBuilder b("deep", lib);

  // leaf: one inverter.
  const ModuleId leaf = b.design().add_module("leaf");
  {
    Module& m = b.design().module_mut(leaf);
    const NetId a = m.add_net("a");
    const NetId y = m.add_net("y");
    m.bind_port(m.add_port("A", PortDirection::kInput), a);
    m.bind_port(m.add_port("Y", PortDirection::kOutput), y);
    const InstId g = m.add_cell_inst("g", lib->require("INVX1"), 2);
    m.connect(g, 0, a);
    m.connect(g, 1, y);
  }
  // mid: two leaves in series.
  const ModuleId mid = b.design().add_module("mid");
  {
    Module& m = b.design().module_mut(mid);
    const NetId a = m.add_net("a");
    const NetId x = m.add_net("x");
    const NetId y = m.add_net("y");
    m.bind_port(m.add_port("A", PortDirection::kInput), a);
    m.bind_port(m.add_port("Y", PortDirection::kOutput), y);
    const InstId m0 = m.add_module_inst("u0", leaf, 2);
    m.connect(m0, 0, a);
    m.connect(m0, 1, x);
    const InstId m1 = m.add_module_inst("u1", leaf, 2);
    m.connect(m1, 0, x);
    m.connect(m1, 1, y);
  }
  const NetId in = b.port_in("in");
  const NetId out = b.net("out");
  b.submodule(mid, {in, out}, "top0");
  b.port_out_net("q", out);
  const Design design = b.finish();

  const Design flat = flatten(design);
  EXPECT_EQ(flat.total_cell_count(), 2u);
  EXPECT_TRUE(flat.top().find_inst("top0/u0/g").valid());
  EXPECT_TRUE(flat.top().find_inst("top0/u1/g").valid());
  EXPECT_TRUE(validate(flat).ok());
}

TEST(WireLoadTest, HeavierWireModelSlowsTheDesign) {
  auto lib = make_standard_library();
  TopBuilder b("wl", lib);
  const NetId clk = b.port_in("clk", true);
  NetId n = b.latch("DFFT", b.port_in("d"), clk, "ff1");
  for (int i = 0; i < 16; ++i) n = b.gate("INVX1", {n});
  b.port_out_net("q", b.latch("DFFT", n, clk, "ff2"));
  const Design design = b.finish();
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(10), 0, ns(4));

  auto slack_with = [&](double per_pin) {
    HummingbirdOptions options;
    options.wire.per_pin_ff = per_pin;
    Hummingbird analyser(design, clocks, options);
    analyser.analyze();
    const SyncModel& sync = analyser.sync_model();
    for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
      if (sync.at(SyncId(i)).label == "ff2#0") {
        return analyser.engine().capture_slack(SyncId(i));
      }
    }
    return kInfinitePs;
  };
  EXPECT_LT(slack_with(6.0), slack_with(0.5));
}

TEST(EnableMarginTest, MarginTightensEnableSinks) {
  auto lib = make_standard_library();
  auto build = [&]() {
    TopBuilder b("en", lib);
    const NetId clk = b.port_in("clk", true);
    NetId en = b.latch("DFFT", b.port_in("e"), clk, "en_ff");
    const NetId gated = b.gate("AND2X1", {clk, en});
    b.port_out_net("q", b.latch("TLATCH", b.port_in("d"), gated, "lat"));
    return b.finish();
  };
  const Design design = build();
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(10), ns(6), ns(9));

  auto enable_slack = [&](TimePs margin) {
    HummingbirdOptions options;
    options.sync.enable_margin = margin;
    Hummingbird analyser(design, clocks, options);
    analyser.analyze();
    const SyncModel& sync = analyser.sync_model();
    for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
      if (sync.at(SyncId(i)).label == "enable:lat#0") {
        return analyser.engine().capture_slack(SyncId(i));
      }
    }
    return kInfinitePs;
  };
  const TimePs base = enable_slack(0);
  ASSERT_NE(base, kInfinitePs);
  EXPECT_EQ(enable_slack(ns(2)), base - ns(2));
}

TEST(NetlistScaleTest, DesRoundTripsThroughText) {
  auto lib = make_standard_library();
  DesSpec spec;
  spec.rounds = 8;
  const Design des = make_des(lib, spec);
  const std::string text = netlist_to_string(des);
  const Design re = netlist_from_string(text, lib);
  EXPECT_EQ(re.total_cell_count(), des.total_cell_count());
  EXPECT_EQ(re.total_net_count(), des.total_net_count());
  EXPECT_EQ(netlist_to_string(re), text);
  EXPECT_TRUE(validate(re).ok());
}

TEST(ValidateScaleTest, GeneratedDesignsStayValidUnderResizing) {
  auto lib = make_standard_library();
  DesSpec spec;
  spec.rounds = 2;
  Design des = make_des(lib, spec);
  // Resize a sample of instances and re-validate.
  int resized = 0;
  for (std::uint32_t i = 0; i < des.top().insts().size() && resized < 50; i += 7) {
    const Instance& inst = des.top().inst(InstId(i));
    if (!inst.is_cell()) continue;
    const CellId stronger = des.lib().stronger_variant(inst.cell);
    if (stronger.valid()) {
      des.module_mut(des.top_id()).inst_mut(InstId(i)).cell = stronger;
      ++resized;
    }
  }
  EXPECT_GT(resized, 10);
  EXPECT_TRUE(validate(des).ok());
}

}  // namespace
}  // namespace hb
