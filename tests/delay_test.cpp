#include <gtest/gtest.h>

#include <cmath>

#include "delay/calculator.hpp"
#include "netlist/builder.hpp"
#include "netlist/stdcells.hpp"

namespace hb {
namespace {

class DelayTest : public ::testing::Test {
 protected:
  std::shared_ptr<const Library> lib_ = make_standard_library();
};

TEST_F(DelayTest, NetLoadSumsPinCapsAndWire) {
  TopBuilder b("d", lib_);
  const NetId a = b.port_in("a");
  const NetId y = b.gate("INVX1", {a}, "u1");
  // Fan the output to two NAND inputs.
  const NetId z1 = b.gate("NAND2X1", {y, a});
  const NetId z2 = b.gate("NAND2X1", {y, a});
  b.port_out_net("q1", z1);
  b.port_out_net("q2", z2);
  const Design d = b.finish();

  const WireLoadModel wire{};
  DelayCalculator calc(d, wire);
  const Module& top = d.top();
  const NetId ynet = top.inst(top.find_inst("u1")).conn[1];
  // 3 pins on the net (driver + 2 sinks); sinks are NAND2X1 A inputs.
  const double expected = wire.wire_cap_ff(3) + 2 * 2.2;
  EXPECT_NEAR(calc.net_load_ff(d.top_id(), ynet), expected, 1e-9);
}

TEST_F(DelayTest, ArcDelayIsIntrinsicPlusSlopeTimesLoad) {
  TopBuilder b("d", lib_);
  const NetId a = b.port_in("a");
  const NetId y = b.gate("INVX1", {a}, "u1");
  b.port_out_net("q", y);
  const Design d = b.finish();

  DelayCalculator calc(d);
  const Module& top = d.top();
  const InstId u1 = top.find_inst("u1");
  const Cell& inv = lib_->cell(top.inst(u1).cell);
  const TimingArc& arc = inv.arcs()[0];
  const double load = calc.net_load_ff(d.top_id(), top.inst(u1).conn[arc.to_port]);
  const RiseFall delay = calc.arc_delay(d.top_id(), u1, arc);
  EXPECT_EQ(delay.rise, arc.intrinsic_rise +
                            static_cast<TimePs>(std::llround(arc.slope_rise * load)));
  EXPECT_EQ(delay.fall, arc.intrinsic_fall +
                            static_cast<TimePs>(std::llround(arc.slope_fall * load)));
}

TEST_F(DelayTest, StrongerDriveIsFasterUnderLoad) {
  for (const char* family : {"INV", "NAND2"}) {
    TopBuilder b(family, lib_);
    const NetId a = b.port_in("a");
    std::vector<NetId> ins{a};
    if (std::string(family) == "NAND2") ins.push_back(b.port_in("b"));
    const NetId y1 = b.gate(std::string(family) + "X1", ins, "weak");
    const NetId y4 = b.gate(std::string(family) + "X4", ins, "strong");
    // Load both outputs with 4 receivers.
    for (int i = 0; i < 4; ++i) {
      b.port_out_net("w" + std::to_string(i), b.gate("INVX1", {y1}));
      b.port_out_net("s" + std::to_string(i), b.gate("INVX1", {y4}));
    }
    const Design d = b.finish();
    DelayCalculator calc(d);
    const Module& top = d.top();
    auto worst = [&](const char* inst_name) {
      const InstId id = top.find_inst(inst_name);
      const Cell& cell = lib_->cell(top.inst(id).cell);
      TimePs w = 0;
      for (const TimingArc& arc : cell.arcs()) {
        w = std::max(w, calc.arc_delay(d.top_id(), id, arc).max());
      }
      return w;
    };
    EXPECT_LT(worst("strong"), worst("weak")) << family;
  }
}

TEST_F(DelayTest, ModuleArcsCombineInternalPaths) {
  TopBuilder b("h", lib_);
  const ModuleId sub_id = b.design().add_module("chain3");
  {
    Module& sub = b.design().module_mut(sub_id);
    NetId n = sub.add_net("a");
    sub.bind_port(sub.add_port("A", PortDirection::kInput), n);
    const CellId inv = lib_->require("INVX1");
    for (int i = 0; i < 3; ++i) {
      const InstId g = sub.add_cell_inst("g" + std::to_string(i), inv, 2);
      sub.connect(g, 0, n);
      n = sub.add_net("n" + std::to_string(i));
      sub.connect(g, 1, n);
    }
    sub.bind_port(sub.add_port("Y", PortDirection::kOutput), n);
  }
  const NetId a = b.port_in("a");
  const NetId y = b.net("y");
  b.submodule(sub_id, {a, y}, "m0");
  b.port_out_net("q", y);
  const Design d = b.finish();

  DelayCalculator calc(d);
  const Module& top = d.top();
  const Instance& minst = top.inst(top.find_inst("m0"));
  const auto& arcs = calc.arcs_of(minst);
  ASSERT_EQ(arcs.size(), 1u);
  EXPECT_EQ(arcs[0].unate, Unate::kNone);  // conservative for abstracted blocks
  // Three INVX1 stages: the combined intrinsic must exceed 3x the raw
  // intrinsic (loads included) and the slope must be the last inverter's.
  EXPECT_GT(arcs[0].intrinsic_rise, 3 * 28);
  EXPECT_NEAR(arcs[0].slope_rise, 4.6, 1e-9);
  // Input cap of the module port equals the first inverter's input cap.
  EXPECT_NEAR(calc.input_cap_ff(d.top_id(), minst, 0), 1.8, 1e-9);
}

TEST_F(DelayTest, ModuleArcOnlyForConnectedPairs) {
  // Two independent paths through one module: A->X and B->Y only.
  TopBuilder b("h2", lib_);
  const ModuleId sub_id = b.design().add_module("dual");
  {
    Module& sub = b.design().module_mut(sub_id);
    const CellId inv = lib_->require("INVX1");
    for (int k = 0; k < 2; ++k) {
      const std::string in_name = k == 0 ? "A" : "B";
      const std::string out_name = k == 0 ? "X" : "Y";
      const NetId in = sub.add_net("i" + std::to_string(k));
      const NetId out = sub.add_net("o" + std::to_string(k));
      sub.bind_port(sub.add_port(in_name, PortDirection::kInput), in);
      const InstId g = sub.add_cell_inst("g" + std::to_string(k), inv, 2);
      sub.connect(g, 0, in);
      sub.connect(g, 1, out);
      sub.bind_port(sub.add_port(out_name, PortDirection::kOutput), out);
    }
  }
  const NetId a = b.port_in("a");
  const NetId c = b.port_in("c");
  const NetId x = b.net("x");
  const NetId y = b.net("y");
  // Submodule port order is A, X, B, Y (interleaved by construction).
  b.submodule(sub_id, {a, x, c, y}, "m0");
  b.port_out_net("qx", x);
  b.port_out_net("qy", y);
  const Design d = b.finish();

  DelayCalculator calc(d);
  const auto& arcs = calc.arcs_of(d.top().inst(d.top().find_inst("m0")));
  ASSERT_EQ(arcs.size(), 2u);
  // A(0)->X(1) and B(2)->Y(3); no cross arcs A->Y or B->X.
  EXPECT_EQ(arcs[0].from_port, 0u);
  EXPECT_EQ(arcs[0].to_port, 1u);
  EXPECT_EQ(arcs[1].from_port, 2u);
  EXPECT_EQ(arcs[1].to_port, 3u);
}

TEST_F(DelayTest, PropagationRulesRespectUnateness) {
  const RiseFall in{100, 50};
  const RiseFall d{10, 20};
  TimingArc pos;
  pos.unate = Unate::kPositive;
  TimingArc neg;
  neg.unate = Unate::kNegative;
  TimingArc none;
  none.unate = Unate::kNone;

  EXPECT_EQ(propagate_forward(in, pos, d), (RiseFall{110, 70}));
  EXPECT_EQ(propagate_forward(in, neg, d), (RiseFall{60, 120}));
  EXPECT_EQ(propagate_forward(in, none, d), (RiseFall{110, 120}));

  const RiseFall req{200, 300};
  EXPECT_EQ(propagate_backward(req, pos, d), (RiseFall{190, 280}));
  EXPECT_EQ(propagate_backward(req, neg, d), (RiseFall{280, 190}));
  EXPECT_EQ(propagate_backward(req, none, d), (RiseFall{190, 190}));
}

}  // namespace
}  // namespace hb
