#include <gtest/gtest.h>

#include "baseline/rigid_latch.hpp"
#include "constraints/feasibility.hpp"
#include "gen/pipeline.hpp"
#include "netlist/builder.hpp"
#include "netlist/stdcells.hpp"
#include "sta/hummingbird.hpp"

namespace hb {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  std::shared_ptr<const Library> lib_ = make_standard_library();

  static SyncId find_instance(const SyncModel& sync, const std::string& label) {
    for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
      if (sync.at(SyncId(i)).label == label) return SyncId(i);
    }
    return SyncId::invalid();
  }
};

// Hand-computed single-phase flip-flop pipeline:
//   d -> dff1 -> INVX1 -> dff2 -> q, clock 10 ns period, pulse [0, 4 ns].
//
// Loads:  dff1.Q net = wire(2 pins) + INV cap = 3.0 + 1.8 = 4.8 fF
//         INV.Y net  = wire(2 pins) + D cap   = 3.0 + 2.4 = 5.4 fF
// Delays: D_cz(dff1) = 95 + round(3.6*4.8)  = 112 ps
//         INV rise    = 28 + round(4.6*5.4) = 53 ps  (fall 22+21 = 43)
// Path dff1->dff2: one full period (same-edge), closure 10000 - 65 (setup),
// ready = 112 + 53 (fall-at-D rise... worst is rise at 165), so
// slack = 9935 - 165 = 9770 ps.  PI->dff1: 4000 - 65 - 0 = 3935 ps.
TEST_F(EngineTest, HandComputedFlipFlopPipeline) {
  TopBuilder b("pipe", lib_);
  const NetId clk = b.port_in("clk", true);
  const NetId d = b.port_in("d");
  const NetId q1 = b.latch("DFFT", d, clk, "dff1");
  const NetId inv = b.gate("INVX1", {q1}, "u1");
  const NetId q2 = b.latch("DFFT", inv, clk, "dff2");
  b.port_out_net("q", q2);
  const Design design = b.finish();

  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(10), 0, ns(4));

  Hummingbird hb(design, clocks);
  const Algorithm1Result res = hb.analyze();
  EXPECT_TRUE(res.works_as_intended);
  EXPECT_EQ(res.worst_slack, 3935);

  const SlackEngine& engine = hb.engine();
  const SyncModel& sync = hb.sync_model();
  EXPECT_EQ(engine.capture_slack(find_instance(sync, "dff2#0")), 9770);
  EXPECT_EQ(engine.capture_slack(find_instance(sync, "dff1#0")), 3935);
  EXPECT_EQ(engine.launch_slack(find_instance(sync, "dff1#0")), 9770);
  EXPECT_EQ(engine.launch_slack(find_instance(sync, "in:d")), 3935);
  // dff2 -> PO: the Q net has one instance pin (ports carry no cap), load
  // 1.2 + 0.9 = 2.1 fF: D_cz = 95 + round(3.6*2.1) = 103;
  // slack = 10000 - (4000 + 103) = 5897.
  EXPECT_EQ(engine.capture_slack(find_instance(sync, "out:q")), 5897);

  // One pass per cluster; every node settles once.
  EXPECT_EQ(engine.num_passes_total(), 3u);  // PI, middle, PO clusters
  const TNodeId d_pin = sync.at(find_instance(sync, "dff2#0")).data_in;
  EXPECT_EQ(engine.node_timing(d_pin).settling_count, 1);
  EXPECT_EQ(engine.node_timing(d_pin).slack, 9770);

  // The oracle agrees the system works.
  EXPECT_TRUE(check_intended_behaviour(engine).feasible);
}

TEST_F(EngineTest, ViolationDetectedWhenClockTooFast) {
  // 64 inverters between flip-flops cannot fit a 2 ns period.
  TopBuilder b("fast", lib_);
  const NetId clk = b.port_in("clk", true);
  const NetId d = b.port_in("d");
  NetId n = b.latch("DFFT", d, clk, "dff1");
  for (int i = 0; i < 64; ++i) n = b.gate("INVX1", {n});
  const NetId q = b.latch("DFFT", n, clk, "dff2");
  b.port_out_net("q", q);
  const Design design = b.finish();

  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(2), 0, ns(1));

  Hummingbird hb(design, clocks);
  const Algorithm1Result res = hb.analyze();
  EXPECT_FALSE(res.works_as_intended);
  EXPECT_LT(res.worst_slack, 0);
  EXPECT_FALSE(check_intended_behaviour(hb.engine()).feasible);

  // The slow path is reported and runs from dff1 to dff2 through the chain.
  const auto paths = hb.slow_paths(5);
  ASSERT_FALSE(paths.empty());
  EXPECT_LT(paths[0].slack, 0);
  const SyncModel& sync = hb.sync_model();
  EXPECT_EQ(sync.at(paths[0].capture).label, "dff2#0");
  EXPECT_EQ(sync.at(paths[0].launch).label, "dff1#0");
  // Path steps: dff1.Q, 64 inverter A/Y pairs... at least 60 steps, ending
  // at dff2.D, with non-decreasing arrivals.
  ASSERT_GE(paths[0].steps.size(), 60u);
  for (std::size_t i = 1; i < paths[0].steps.size(); ++i) {
    EXPECT_GE(paths[0].steps[i].arrival, paths[0].steps[i - 1].arrival);
  }
}

// Two-phase transparent-latch pipeline with unbalanced stages: rigid
// analysis (latches frozen at the trailing edge) fails, Algorithm 1's slack
// transfer (cycle stealing) succeeds — the paper's headline latch-awareness.
TEST_F(EngineTest, CycleStealingThroughTransparentLatches) {
  PipelineSpec spec;
  spec.stage_depths = {120, 20};
  spec.width = 1;
  spec.latch_cell = "TLATCH";
  spec.two_phase = true;
  spec.seed = 3;
  const Design design = make_pipeline(lib_, spec);
  const ClockSet clocks = make_two_phase_clocks(ns(10));

  Hummingbird hb(design, clocks);

  // Rigid baseline fails: stage 1 alone exceeds the phase window.
  const RigidResult rigid = rigid_latch_analysis(hb.sync_model_mut(), hb.engine_mut());
  EXPECT_FALSE(rigid.works_as_intended);

  const Algorithm1Result res = hb.analyze();
  EXPECT_TRUE(res.works_as_intended) << "worst slack " << res.worst_slack;
  EXPECT_GT(res.forward_cycles + res.backward_cycles, 0);
  EXPECT_TRUE(check_intended_behaviour(hb.engine()).feasible);
}

TEST_F(EngineTest, CycleStealingImpossibleWithEdgeTriggeredLatches) {
  PipelineSpec spec;
  spec.stage_depths = {120, 20};
  spec.width = 1;
  spec.latch_cell = "DFFT";
  spec.two_phase = true;
  spec.seed = 3;
  const Design design = make_pipeline(lib_, spec);
  const ClockSet clocks = make_two_phase_clocks(ns(10));

  Hummingbird hb(design, clocks);
  const Algorithm1Result res = hb.analyze();
  EXPECT_FALSE(res.works_as_intended);
  EXPECT_FALSE(check_intended_behaviour(hb.engine()).feasible);
}

TEST_F(EngineTest, BalancedPipelineWorksEitherWay) {
  for (const char* latch : {"TLATCH", "DFFT"}) {
    PipelineSpec spec;
    spec.stage_depths = {20, 20};
    spec.width = 1;
    spec.latch_cell = latch;
    spec.seed = 5;
    const Design design = make_pipeline(lib_, spec);
    const ClockSet clocks = make_two_phase_clocks(ns(10));
    Hummingbird hb(design, clocks);
    EXPECT_TRUE(hb.analyze().works_as_intended) << latch;
    EXPECT_TRUE(check_intended_behaviour(hb.engine()).feasible) << latch;
  }
}

// Algorithm 2 produces coherent constraints: for every node pair (x, y) on
// one critical chain, required(y) - ready(x) bounds the path delay, and for
// slow paths the deficit matches the reported slack.
TEST_F(EngineTest, ConstraintGenerationCoversSlowPaths) {
  TopBuilder b("slow", lib_);
  const NetId clk = b.port_in("clk", true);
  const NetId d = b.port_in("d");
  NetId n = b.latch("DFFT", d, clk, "dff1");
  for (int i = 0; i < 30; ++i) n = b.gate("INVX1", {n});
  const NetId q = b.latch("DFFT", n, clk, "dff2");
  b.port_out_net("q", q);
  const Design design = b.finish();

  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(1), 0, ps(500));

  Hummingbird hb(design, clocks);
  EXPECT_FALSE(hb.analyze().works_as_intended);
  const ConstraintSet cs = hb.generate_constraints();
  const SyncModel& sync = hb.sync_model();

  const TNodeId capture_pin = sync.at(find_instance(sync, "dff2#0")).data_in;
  const ConstraintTimes& ct = cs.at(capture_pin);
  EXPECT_TRUE(ct.has_ready);
  EXPECT_TRUE(ct.has_required);
  EXPECT_LT(ct.slack, 0);
  // Ready exceeds required by exactly the (negative) slack at the endpoint.
  EXPECT_EQ(ct.slack, std::min(ct.required.rise - ct.ready.rise,
                               ct.required.fall - ct.ready.fall));
}

TEST_F(EngineTest, SettlingCountsMatchPassesOnFlipFlopDesigns) {
  PipelineSpec spec;
  spec.stage_depths = {10, 10, 10};
  spec.width = 2;
  spec.latch_cell = "DFFT";
  spec.seed = 9;
  const Design design = make_pipeline(lib_, spec);
  const ClockSet clocks = make_two_phase_clocks(ns(40));
  Hummingbird hb(design, clocks);
  hb.analyze();
  // Every combinational node settles exactly once: two-phase flip-flop
  // clusters need a single pass each.
  const TimingGraph& graph = hb.graph();
  for (std::uint32_t n = 0; n < graph.num_nodes(); ++n) {
    const NodeTiming& nt = hb.engine().node_timing(TNodeId(n));
    if (nt.has_ready) {
      EXPECT_LE(nt.settling_count, 1) << graph.node_name(TNodeId(n));
    }
  }
}

}  // namespace
}  // namespace hb
