// The circuit generators must produce structurally valid designs of the
// sizes Table 1 quotes, deterministically in their seeds.
#include <gtest/gtest.h>

#include "gen/alu.hpp"
#include "gen/des.hpp"
#include "gen/fig1.hpp"
#include "gen/fsm.hpp"
#include "gen/pipeline.hpp"
#include "gen/random_network.hpp"
#include "netlist/flatten.hpp"
#include "netlist/netlist_io.hpp"
#include "netlist/stdcells.hpp"
#include "netlist/validate.hpp"

namespace hb {
namespace {

class GenTest : public ::testing::Test {
 protected:
  std::shared_ptr<const Library> lib_ = make_standard_library();
};

TEST_F(GenTest, DesMatchesPaperScale) {
  const Design des = make_des(lib_);
  // Paper: "a complete data encryption chip, made up from 3681 standard
  // cells"; the generator lands within 2%.
  EXPECT_NEAR(static_cast<double>(des.total_cell_count()), 3681.0, 75.0);
  EXPECT_TRUE(validate(des).ok()) << validate(des).to_string();
}

TEST_F(GenTest, DesIsDeterministic) {
  const Design a = make_des(lib_);
  const Design b = make_des(lib_);
  EXPECT_EQ(netlist_to_string(a), netlist_to_string(b));
}

TEST_F(GenTest, DesScalesWithRounds) {
  DesSpec small;
  small.rounds = 4;
  DesSpec big;
  big.rounds = 16;
  EXPECT_LT(make_des(lib_, small).total_cell_count(),
            make_des(lib_, big).total_cell_count() / 2);
}

TEST_F(GenTest, AluMatchesPaperScaleAt56Bits) {
  AluSpec spec;
  spec.bits = 56;
  const Design alu = make_alu(lib_, spec);
  // Paper: "a portion of a CPU chip made up from 899 standard cells".
  EXPECT_NEAR(static_cast<double>(alu.total_cell_count()), 899.0, 75.0);
  EXPECT_TRUE(validate(alu).ok()) << validate(alu).to_string();
}

TEST_F(GenTest, AluWithTransparentRegisters) {
  AluSpec spec;
  spec.bits = 8;
  spec.reg_cell = "TLATCH";
  const Design alu = make_alu(lib_, spec);
  EXPECT_TRUE(validate(alu).ok());
}

TEST_F(GenTest, FsmFlatAndHierDescribeTheSameMachine) {
  const Design flat = make_fsm_flat(lib_);
  const Design hier = make_fsm_hier(lib_);
  EXPECT_TRUE(validate(flat).ok()) << validate(flat).to_string();
  EXPECT_TRUE(validate(hier).ok()) << validate(hier).to_string();
  // Identical standard-cell content; the hierarchical one adds a module.
  EXPECT_EQ(flat.total_cell_count(), hier.total_cell_count());
  EXPECT_EQ(flat.num_modules(), 1u);
  EXPECT_EQ(hier.num_modules(), 2u);
  // Flattening the hierarchical design reproduces the flat cell count.
  EXPECT_EQ(flatten(hier).total_cell_count(), flat.total_cell_count());
}

TEST_F(GenTest, FsmHasStateRegister) {
  const FsmSpec spec;
  const Design fsm = make_fsm_flat(lib_, spec);
  for (int i = 0; i < spec.state_bits; ++i) {
    EXPECT_TRUE(fsm.top().find_inst("sreg" + std::to_string(i)).valid()) << i;
  }
}

TEST_F(GenTest, Fig1DesignValid) {
  const Fig1Config cfg;
  const Design d = make_fig1_design(lib_, cfg);
  EXPECT_TRUE(validate(d).ok()) << validate(d).to_string();
  const ClockSet clocks = make_fig1_clocks(cfg);
  EXPECT_EQ(clocks.num_clocks(), 4u);
  EXPECT_EQ(clocks.overall_period(), cfg.period);
  EXPECT_TRUE(d.top().find_inst("shared").valid());
}

TEST_F(GenTest, PipelineStageAndLaneCounts) {
  PipelineSpec spec;
  spec.stage_depths = {5, 5, 5};
  spec.width = 3;
  const Design d = make_pipeline(lib_, spec);
  EXPECT_TRUE(validate(d).ok());
  // Latch banks: stages + final capture bank, per lane.
  std::size_t latches = 0;
  for (const Instance& inst : d.top().insts()) {
    if (inst.is_cell() && d.lib().cell(inst.cell).is_sequential()) ++latches;
  }
  EXPECT_EQ(latches, 3u * 4u);
}

TEST_F(GenTest, PipelineSinglePhaseUsesOneClock) {
  PipelineSpec spec;
  spec.two_phase = false;
  const Design d = make_pipeline(lib_, spec);
  EXPECT_TRUE(validate(d).ok());
  EXPECT_EQ(d.top().ports().size(), 1u /*clk*/ + 1u /*d0*/ + 1u /*q0*/);
}

class RandomNetworkTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomNetworkTest, AlwaysValidAndDeterministic) {
  auto lib = make_standard_library();
  RandomNetworkSpec spec;
  spec.seed = GetParam();
  spec.num_clocks = 1 + static_cast<int>(GetParam() % 4);
  spec.transparent_prob = (GetParam() % 10) / 10.0;
  const RandomNetwork a = make_random_network(lib, spec);
  const RandomNetwork b = make_random_network(lib, spec);
  EXPECT_TRUE(validate(a.design).ok()) << validate(a.design).to_string();
  EXPECT_EQ(netlist_to_string(a.design), netlist_to_string(b.design));
  EXPECT_EQ(a.clocks.overall_period(), b.clocks.overall_period());
  // Harmonic check: every clock period divides the overall period.
  for (std::uint32_t c = 0; c < a.clocks.num_clocks(); ++c) {
    EXPECT_EQ(a.clocks.overall_period() % a.clocks.clock(ClockId(c)).period, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetworkTest,
                         ::testing::Range<std::uint64_t>(1, 31));

}  // namespace
}  // namespace hb
