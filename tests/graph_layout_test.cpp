// Differential checks of the timing graph's flattened memory layout: the
// CSR fanout/fanin slices, the sweep-order arc permutation, and the
// longest-path levels are compared against a naive reference builder that
// only uses the public arc records.  Also pins down the determinism the
// layout promises: rebuilding the graph from the same design reproduces
// identical arc ids, and worst-path reports are byte-identical across
// rebuilds and thread-pool sizes.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <random>
#include <string>
#include <vector>

#include "gen/alu.hpp"
#include "gen/des.hpp"
#include "gen/fig1.hpp"
#include "gen/filter.hpp"
#include "gen/fsm.hpp"
#include "gen/pipeline.hpp"
#include "gen/random_network.hpp"
#include "netlist/stdcells.hpp"
#include "sta/cluster.hpp"
#include "sta/report.hpp"
#include "sta/slack_engine.hpp"
#include "sta/timing_graph.hpp"
#include "util/thread_pool.hpp"

namespace hb {
namespace {

// Reference layout rebuilt from the public per-arc records alone, the way
// the pre-CSR engine stored adjacency: one vector of arc ids per node plus
// longest-path levels from a Kahn sweep over that adjacency.
struct NaiveLayout {
  std::vector<std::vector<std::uint32_t>> fanout;
  std::vector<std::vector<std::uint32_t>> fanin;
  std::vector<std::uint32_t> level;

  explicit NaiveLayout(const TimingGraph& g) {
    const std::size_t n = g.num_nodes();
    fanout.resize(n);
    fanin.resize(n);
    level.assign(n, 0);
    std::vector<std::uint32_t> indeg(n, 0);
    for (std::uint32_t a = 0; a < g.num_arcs(); ++a) {
      const TArcRec& arc = g.arc(a);
      fanout[arc.from.index()].push_back(a);
      fanin[arc.to.index()].push_back(a);
      ++indeg[arc.to.index()];
    }
    // The graph's slices are sorted by (far endpoint, arc id).
    auto by_head = [&](std::uint32_t a, std::uint32_t b) {
      const std::uint32_t ha = g.arc(a).to.value(), hb2 = g.arc(b).to.value();
      return ha != hb2 ? ha < hb2 : a < b;
    };
    auto by_tail = [&](std::uint32_t a, std::uint32_t b) {
      const std::uint32_t ta = g.arc(a).from.value(), tb = g.arc(b).from.value();
      return ta != tb ? ta < tb : a < b;
    };
    for (std::size_t i = 0; i < n; ++i) {
      std::sort(fanout[i].begin(), fanout[i].end(), by_head);
      std::sort(fanin[i].begin(), fanin[i].end(), by_tail);
    }
    // Longest-path depth by Kahn relaxation.
    std::deque<std::uint32_t> q;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (indeg[i] == 0) q.push_back(i);
    }
    std::size_t popped = 0;
    while (!q.empty()) {
      const std::uint32_t u = q.front();
      q.pop_front();
      ++popped;
      for (std::uint32_t a : fanout[u]) {
        const std::uint32_t v = g.arc(a).to.index();
        level[v] = std::max(level[v], level[u] + 1);
        if (--indeg[v] == 0) q.push_back(v);
      }
    }
    EXPECT_EQ(popped, n) << "arc graph has a cycle";
  }
};

// Every structural invariant the propagation kernels rely on, checked
// against the naive rebuild.
void check_layout(const TimingGraph& g) {
  NaiveLayout ref(g);

  std::uint32_t max_level = 0;
  for (std::uint32_t i = 0; i < g.num_nodes(); ++i) {
    const TNodeId id(i);
    const ArcSpan fo = g.fanout(id);
    const ArcSpan fi = g.fanin(id);
    ASSERT_EQ(fo.size(), ref.fanout[i].size()) << "node " << g.node_name(id);
    ASSERT_EQ(fi.size(), ref.fanin[i].size()) << "node " << g.node_name(id);
    for (std::size_t k = 0; k < fo.size(); ++k) {
      EXPECT_EQ(fo[k], ref.fanout[i][k]) << "fanout of " << g.node_name(id);
      // Sweep-order arc storage: a node's fanout is a run of consecutive
      // arc ids (what lets the forward sweep read arcs_data() linearly).
      EXPECT_EQ(fo[k], fo[0] + k) << "fanout of " << g.node_name(id);
    }
    for (std::size_t k = 0; k < fi.size(); ++k) {
      EXPECT_EQ(fi[k], ref.fanin[i][k]) << "fanin of " << g.node_name(id);
    }
    EXPECT_EQ(g.level(id), ref.level[i]) << "level of " << g.node_name(id);
    max_level = std::max(max_level, g.level(id));
  }
  EXPECT_EQ(g.num_levels(), g.num_nodes() == 0 ? 0u : max_level + 1);

  // Arcs strictly increase level, and the stored order is the sweep order:
  // (topological position of tail, head id, arc id), which implies the arc
  // array is sorted by (level of tail, ...) — tails never decrease in level.
  std::uint32_t prev_tail_level = 0;
  for (std::uint32_t a = 0; a < g.num_arcs(); ++a) {
    const TArcRec& arc = g.arc(a);
    EXPECT_LT(g.level(arc.from), g.level(arc.to)) << "arc " << a;
    EXPECT_GE(g.level(arc.from), prev_tail_level) << "arc " << a;
    prev_tail_level = g.level(arc.from);
  }

  // topo_order(): a permutation of all nodes, level-monotone with node-id
  // tie-break — fully deterministic given the graph.
  const std::vector<TNodeId>& topo = g.topo_order();
  ASSERT_EQ(topo.size(), g.num_nodes());
  std::vector<bool> seen(g.num_nodes(), false);
  for (std::size_t i = 0; i < topo.size(); ++i) {
    ASSERT_FALSE(seen[topo[i].index()]);
    seen[topo[i].index()] = true;
    if (i > 0) {
      const std::uint32_t la = g.level(topo[i - 1]), lb = g.level(topo[i]);
      EXPECT_TRUE(la < lb || (la == lb && topo[i - 1].value() < topo[i].value()))
          << "topo position " << i;
    }
  }
}

class GraphLayoutTest : public ::testing::Test {
 protected:
  std::shared_ptr<const Library> lib_ = make_standard_library();
};

TEST_F(GraphLayoutTest, CsrMatchesNaiveOnGeneratedNetworks) {
  std::vector<Design> designs;
  designs.push_back(make_alu(lib_));
  designs.push_back(make_des(lib_));
  designs.push_back(make_fig1_design(lib_, Fig1Config{}));
  designs.push_back(make_multirate_filter(lib_));
  designs.push_back(make_fsm_flat(lib_));
  designs.push_back(make_fsm_hier(lib_));
  PipelineSpec pspec;
  pspec.stage_depths = {8, 4, 8};
  pspec.width = 4;
  designs.push_back(make_pipeline(lib_, pspec));
  for (std::uint64_t seed : {1, 7, 13}) {
    RandomNetworkSpec rspec;
    rspec.seed = seed;
    rspec.banks = 4;
    rspec.bank_width = 4;
    rspec.gates_per_stage = 30;
    designs.push_back(make_random_network(lib_, rspec).design);
  }

  for (const Design& design : designs) {
    SCOPED_TRACE(design.top().name());
    DelayCalculator calc(design);
    TimingGraph graph(design, calc);
    ASSERT_GT(graph.num_arcs(), 0u);
    check_layout(graph);
  }
}

// Degenerate shapes the CSR builder must survive: quarantined instances
// leave isolated zero-arc nodes behind, and heavy quarantine produces
// whole clusters' worth of nodes with no adjacency at all.
TEST_F(GraphLayoutTest, DegenerateQuarantinedGraphsKeepInvariants) {
  RandomNetworkSpec rspec;
  rspec.seed = 21;
  rspec.banks = 3;
  rspec.bank_width = 3;
  rspec.gates_per_stage = 20;
  RandomNetwork net = make_random_network(lib_, rspec);
  DelayCalculator calc(net.design);
  const std::size_t num_insts = net.design.top().insts().size();

  for (std::uint64_t seed : {3, 5, 9}) {
    SCOPED_TRACE("fuzz seed " + std::to_string(seed));
    std::mt19937_64 rng(seed);
    std::vector<bool> mask(num_insts, false);
    std::size_t expect = 0;
    for (std::size_t i = 0; i < num_insts; ++i) {
      if (rng() % 3 == 0) {
        mask[i] = true;
        ++expect;
      }
    }
    TimingGraph graph(net.design, calc, &mask);
    EXPECT_EQ(graph.num_quarantined(), expect);
    check_layout(graph);
    // Quarantined component pins are fully excised: no arcs in or out.
    for (std::uint32_t n = 0; n < graph.num_nodes(); ++n) {
      const TNode& node = graph.node(TNodeId(n));
      if (!node.is_top_port && graph.is_quarantined(node.inst)) {
        EXPECT_TRUE(graph.fanout(TNodeId(n)).empty());
        EXPECT_TRUE(graph.fanin(TNodeId(n)).empty());
        EXPECT_EQ(graph.level(TNodeId(n)), 0u);
      }
    }
  }

  // Everything quarantined: an arc-free graph of isolated nodes.
  std::vector<bool> all(num_insts, true);
  TimingGraph empty(net.design, calc, &all);
  EXPECT_EQ(empty.num_quarantined(), num_insts);
  check_layout(empty);
  SyncModel sync(empty, net.clocks, calc);
  ClusterSet clusters(empty, sync);
  for (std::uint32_t c = 0; c < clusters.num_clusters(); ++c) {
    EXPECT_TRUE(clusters.cluster(ClusterId(c)).arcs.empty());
  }
}

TEST_F(GraphLayoutTest, RebuildReproducesIdenticalArcIds) {
  RandomNetworkSpec rspec;
  rspec.seed = 7;
  rspec.banks = 4;
  rspec.bank_width = 4;
  rspec.gates_per_stage = 30;
  RandomNetwork net = make_random_network(lib_, rspec);
  DelayCalculator calc(net.design);
  TimingGraph a(net.design, calc);
  TimingGraph b(net.design, calc);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_arcs(), b.num_arcs());
  for (std::uint32_t i = 0; i < a.num_arcs(); ++i) {
    EXPECT_EQ(a.arc(i).from, b.arc(i).from);
    EXPECT_EQ(a.arc(i).to, b.arc(i).to);
    EXPECT_EQ(a.arc(i).delay, b.arc(i).delay);
    EXPECT_EQ(a.arc(i).unate, b.arc(i).unate);
    EXPECT_EQ(a.arc(i).is_net, b.arc(i).is_net);
  }
  for (std::uint32_t n = 0; n < a.num_nodes(); ++n) {
    const ArcSpan fa = a.fanout(TNodeId(n)), fb = b.fanout(TNodeId(n));
    ASSERT_EQ(fa.size(), fb.size());
    for (std::size_t k = 0; k < fa.size(); ++k) EXPECT_EQ(fa[k], fb[k]);
  }
}

// Satellite of the CSR determinism claim: the *reports* — the layer users
// diff — come out byte-identical when the engine is rebuilt from scratch
// and when passes are evaluated under different thread counts.
TEST_F(GraphLayoutTest, WorstPathReportsByteIdenticalAcrossRebuildsAndThreads) {
  struct Workload {
    std::string name;
    Design design;
    ClockSet clocks;
  };
  std::vector<Workload> workloads;
  PipelineSpec pspec;
  pspec.stage_depths = {8, 4, 8};
  pspec.width = 4;
  workloads.push_back({"pipeline", make_pipeline(lib_, pspec),
                       make_two_phase_clocks(ns(6))});
  RandomNetworkSpec rspec;
  rspec.seed = 7;
  rspec.banks = 4;
  rspec.bank_width = 4;
  rspec.gates_per_stage = 40;
  RandomNetwork net = make_random_network(lib_, rspec);
  workloads.push_back({"random", std::move(net.design), std::move(net.clocks)});

  for (Workload& w : workloads) {
    SCOPED_TRACE(w.name);
    // Render the worst paths (violating or not: a huge slack limit keeps
    // the test meaningful even when the workload meets timing).
    auto render = [](const SlackEngine& engine) {
      return format_paths(engine, enumerate_slow_paths(engine, 20, ns(1000))) +
             timing_summary(engine);
    };
    auto run = [&](ThreadPool* pool) {
      DelayCalculator calc(w.design);
      TimingGraph graph(w.design, calc);
      SyncModel sync(graph, w.clocks, calc);
      ClusterSet clusters(graph, sync);
      SlackEngine engine(graph, clusters, sync);
      engine.compute(pool);
      return render(engine);
    };
    const std::string serial = run(nullptr);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, run(nullptr)) << "rebuild changed the report";
    ThreadPool two(2), eight(8);
    EXPECT_EQ(serial, run(&two)) << "2-thread report differs";
    EXPECT_EQ(serial, run(&eight)) << "8-thread report differs";
  }
}

}  // namespace
}  // namespace hb
