// Supplementary-path (hold) checking — the extension module.  The paper
// notes badly asymmetric control path delays can break intended behaviour
// even when every path is fast enough; check_hold() detects exactly that.
#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "netlist/stdcells.hpp"
#include "sta/hummingbird.hpp"

namespace hb {
namespace {

class HoldTest : public ::testing::Test {
 protected:
  std::shared_ptr<const Library> lib_ = make_standard_library();
};

TEST_F(HoldTest, CleanFlipFlopPipelineHasNoViolations) {
  TopBuilder b("clean", lib_);
  const NetId clk = b.port_in("clk", true);
  NetId n = b.latch("DFFT", b.port_in("d"), clk, "ff1");
  for (int i = 0; i < 4; ++i) n = b.gate("INVX1", {n});
  b.port_out_net("q", b.latch("DFFT", n, clk, "ff2"));
  const Design design = b.finish();
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(10), 0, ns(4));
  Hummingbird analyser(design, clocks);
  analyser.analyze();
  EXPECT_TRUE(analyser.check_hold_times().empty());
}

TEST_F(HoldTest, SkewedCaptureClockCreatesRace) {
  // The capture flip-flop's control is delayed through a long buffer chain,
  // so its input closure happens well after the launch edge; a direct wire
  // between the latches then races the late closure.
  TopBuilder b("skewed", lib_);
  const NetId clk = b.port_in("clk", true);
  NetId late_clk = clk;
  for (int i = 0; i < 12; ++i) late_clk = b.gate("CLKBUF", {late_clk});
  const NetId q1 = b.latch("DFFT", b.port_in("d"), clk, "ff1");
  b.port_out_net("q", b.latch("DFFT", q1, late_clk, "ff2"));
  const Design design = b.finish();
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(10), 0, ns(4));
  Hummingbird analyser(design, clocks);
  analyser.analyze();

  // The closure of ff2 lags the clock edge by ~12 CLKBUF delays (>700 ps)
  // while the direct path from ff1 takes only D_cz; demanding that margin
  // as hold time flags the race.  NOTE: the simplified model's closure
  // lower bound is 0 control delay, so the max analysis stays sound; the
  // hold extension uses the *actual* O_ac-derived closure.
  const auto violations = analyser.check_hold_times(ps(500));
  ASSERT_FALSE(violations.empty());
  bool found = false;
  for (const HoldViolation& v : violations) {
    if (analyser.sync_model().at(v.capture).label == "ff2#0") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(HoldTest, MarginMonotonicity) {
  TopBuilder b("m", lib_);
  const NetId clk = b.port_in("clk", true);
  const NetId q1 = b.latch("DFFT", b.port_in("d"), clk, "ff1");
  b.port_out_net("q", b.latch("DFFT", q1, clk, "ff2"));
  const Design design = b.finish();
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(10), 0, ns(4));
  Hummingbird analyser(design, clocks);
  analyser.analyze();
  // With zero margin a direct FF->FF wire passes (D_cz > 0 protects it)...
  EXPECT_TRUE(analyser.check_hold_times(0).empty());
  // ...but demanding more hold margin than D_cz provides must flag it.
  EXPECT_FALSE(analyser.check_hold_times(ns(5)).empty());
}

TEST_F(HoldTest, CloselyOffsetPhasesRace) {
  // A flip-flop launching at 4.2 ns wired straight into a transparent latch
  // whose input closed at 4.0 ns: the new data chases the closing edge with
  // only D_cz + 200 ps + D_dz-related margin to spare — the classic
  // supplementary-path race between closely offset phases.
  TopBuilder b("race", lib_);
  const NetId clka = b.port_in("clka", true);
  const NetId clkb = b.port_in("clkb", true);
  const NetId q1 = b.latch("DFFT", b.port_in("d"), clkb, "src");
  b.port_out_net("q", b.latch("TLATCH", q1, clka, "cap"));
  const Design design = b.finish();
  ClockSet clocks;
  clocks.add_simple_clock("clka", ns(10), 0, ns(4));
  clocks.add_simple_clock("clkb", ns(10), 0, ps(4200));
  Hummingbird analyser(design, clocks);
  analyser.analyze();

  // The margin is roughly D_cz (~110 ps) + 200 ps gap - O_dz (-D_dz): a few
  // hundred ps.  Zero required hold margin passes; 1 ns does not.
  EXPECT_TRUE(analyser.check_hold_times(0).empty());
  const auto violations = analyser.check_hold_times(ns(1));
  ASSERT_FALSE(violations.empty());
  bool found = false;
  for (const HoldViolation& v : violations) {
    if (analyser.sync_model().at(v.capture).label == "cap#0") {
      found = true;
      EXPECT_GT(v.margin, 0);
      EXPECT_LT(v.margin, ns(1));
    }
  }
  EXPECT_TRUE(found);
  // Violations are deduplicated per (launch, capture) pair.
  for (std::size_t i = 1; i < violations.size(); ++i) {
    const bool same = violations[i - 1].launch == violations[i].launch &&
                      violations[i - 1].capture == violations[i].capture;
    EXPECT_FALSE(same);
  }
}

}  // namespace
}  // namespace hb
