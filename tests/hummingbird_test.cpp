// Facade-level behaviour: options, stats, hierarchy handling, the
// flattened-vs-hierarchical equivalence the paper's SM1F/SM1H pair
// demonstrates, and input/output timing specifications.
#include <gtest/gtest.h>

#include "gen/des.hpp"  // make_single_clock
#include "gen/fsm.hpp"
#include "netlist/builder.hpp"
#include "netlist/flatten.hpp"
#include "netlist/stdcells.hpp"
#include "sta/hummingbird.hpp"

namespace hb {
namespace {

class HummingbirdTest : public ::testing::Test {
 protected:
  std::shared_ptr<const Library> lib_ = make_standard_library();
};

TEST_F(HummingbirdTest, StatsReflectTheDesign) {
  const Design fsm = make_fsm_flat(lib_);
  const ClockSet clocks = make_single_clock(ns(20), ns(8));
  Hummingbird analyser(fsm, clocks);
  analyser.analyze();
  const AnalysisStats& s = analyser.stats();
  EXPECT_EQ(s.cells, fsm.total_cell_count());
  EXPECT_EQ(s.nets, fsm.total_net_count());
  EXPECT_GT(s.graph_nodes, s.cells);
  EXPECT_GT(s.graph_arcs, 0u);
  EXPECT_GT(s.sync_instances, 12u);  // 12 state bits + port terminals
  EXPECT_GT(s.clusters, 0u);
  EXPECT_GE(s.analysis_passes, s.clusters - 1);  // clock cone cluster: 0
  EXPECT_GE(s.preprocess_seconds, 0.0);
  EXPECT_GE(s.analysis_seconds, 0.0);
}

TEST_F(HummingbirdTest, ValidationOnByDefault) {
  TopBuilder b("bad", lib_);
  Module& m = b.module();
  m.add_cell_inst("i", lib_->require("INVX1"), 2);  // unconnected
  const Design d = b.finish();
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(10), 0, ns(4));
  EXPECT_THROW(Hummingbird(d, clocks), Error);
}

TEST_F(HummingbirdTest, NonHarmonicClocksRejected) {
  TopBuilder b("t", lib_);
  const NetId c1 = b.port_in("c1", true);
  const NetId c2 = b.port_in("c2", true);
  const NetId d = b.port_in("d");
  const NetId q1 = b.latch("DFFT", d, c1, "f1");
  b.port_out_net("q", b.latch("DFFT", q1, c2, "f2"));
  const Design design = b.finish();
  ClockSet clocks;
  clocks.add_simple_clock("c1", 10007, 0, 5000);  // prime periods:
  clocks.add_simple_clock("c2", 9973, 0, 5000);   // LCM explodes
  EXPECT_THROW(Hummingbird(design, clocks), Error);
}

TEST_F(HummingbirdTest, HierarchicalAndFlatAgree) {
  // SM1F and SM1H describe the same machine; with the module-level delay
  // combination being conservative (worst internal path per port pair),
  // the hierarchical verdict may only be *more* pessimistic, never less.
  const Design flat = make_fsm_flat(lib_);
  const Design hier = make_fsm_hier(lib_);
  for (TimePs period : {ps(400), ps(700), ns(1), ns(2), ns(4), ns(16)}) {
    const ClockSet clocks = make_single_clock(period, period * 2 / 5);
    Hummingbird a_flat(flat, clocks);
    Hummingbird a_hier(hier, clocks);
    const bool flat_ok = a_flat.analyze().works_as_intended;
    const bool hier_ok = a_hier.analyze().works_as_intended;
    if (hier_ok) {
      EXPECT_TRUE(flat_ok) << format_time(period);
    }
    // At generous periods both must pass; at hopeless ones both must fail.
    if (period >= ns(16)) {
      EXPECT_TRUE(hier_ok);
    }
    if (period <= ps(400)) {
      EXPECT_FALSE(flat_ok);
    }
  }
}

TEST_F(HummingbirdTest, FlattenedHierarchyAnalysesIdentically) {
  // flatten(hier) is cell-for-cell the flat design; the analysis of both
  // must agree exactly (same worst slack), unlike the abstracted module.
  const Design hier = make_fsm_hier(lib_);
  const Design flat = flatten(hier);
  const ClockSet clocks = make_single_clock(ns(8), ns(3));
  Hummingbird a(hier, clocks), b(flat, clocks);
  // Worst slacks may differ (module abstraction vs full netlist)...
  const TimePs hier_slack = a.analyze().worst_slack;
  const TimePs flat_slack = b.analyze().worst_slack;
  EXPECT_LE(hier_slack, flat_slack);  // abstraction is conservative
}

TEST_F(HummingbirdTest, InputArrivalTightensTiming) {
  TopBuilder b("t", lib_);
  const NetId clk = b.port_in("clk", true);
  NetId n = b.port_in("d");
  for (int i = 0; i < 8; ++i) n = b.gate("INVX1", {n});
  b.port_out_net("q", b.latch("DFFT", n, clk, "ff"));
  const Design design = b.finish();
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(10), 0, ns(4));

  HummingbirdOptions early;
  Hummingbird a(design, clocks, early);
  const TimePs slack_early = a.analyze().worst_slack;

  HummingbirdOptions late;
  late.sync.input_arrivals.push_back({"d", ns(3), ps(200)});
  Hummingbird c(design, clocks, late);
  const TimePs slack_late = c.analyze().worst_slack;
  EXPECT_EQ(slack_early - slack_late, ns(3) + ps(200));
}

TEST_F(HummingbirdTest, OutputRequiredTightensTiming) {
  TopBuilder b("t", lib_);
  const NetId clk = b.port_in("clk", true);
  NetId n = b.latch("DFFT", b.port_in("d"), clk, "ff");
  for (int i = 0; i < 8; ++i) n = b.gate("INVX1", {n});
  b.port_out_net("q", n);
  const Design design = b.finish();
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(10), 0, ns(4));

  auto out_slack = [](Hummingbird& analyser) {
    analyser.analyze();
    const SyncModel& sync = analyser.sync_model();
    for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
      if (sync.at(SyncId(i)).label == "out:q") {
        return analyser.engine().capture_slack(SyncId(i));
      }
    }
    return kInfinitePs;
  };
  Hummingbird a(design, clocks);
  const TimePs base = out_slack(a);
  ASSERT_NE(base, kInfinitePs);

  HummingbirdOptions opts;
  opts.sync.output_requireds.push_back({"q", ns(8), 0});  // 2 ns earlier
  Hummingbird c(design, clocks, opts);
  EXPECT_EQ(out_slack(c), base - ns(2));
}

TEST_F(HummingbirdTest, UnconstrainedPortsWhenDisabled) {
  TopBuilder b("t", lib_);
  const NetId clk = b.port_in("clk", true);
  NetId n = b.port_in("d");
  for (int i = 0; i < 200; ++i) n = b.gate("INVX1", {n});
  b.port_out_net("q", b.latch("DFFT", n, clk, "ff"));
  const Design design = b.finish();
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(4), 0, ns(2));

  Hummingbird constrained(design, clocks);
  EXPECT_FALSE(constrained.analyze().works_as_intended);

  HummingbirdOptions opts;
  opts.sync.constrain_ports = false;
  Hummingbird open(design, clocks, opts);
  // Without port constraints there is no launch into the chain at all, so
  // nothing violates.
  EXPECT_TRUE(open.analyze().works_as_intended);
}

TEST_F(HummingbirdTest, GenerateConstraintsRunsAnalyzeIfNeeded) {
  const Design fsm = make_fsm_flat(lib_);
  const ClockSet clocks = make_single_clock(ns(20), ns(8));
  Hummingbird analyser(fsm, clocks);
  const ConstraintSet cs = analyser.generate_constraints();  // implicit analyze
  EXPECT_EQ(cs.nodes.size(), analyser.graph().num_nodes());
}

TEST_F(HummingbirdTest, ReanalysisIsDeterministic) {
  const Design fsm = make_fsm_flat(lib_);
  const ClockSet clocks = make_single_clock(ns(6), ns(2));
  Hummingbird analyser(fsm, clocks);
  const Algorithm1Result r1 = analyser.analyze();
  const Algorithm1Result r2 = analyser.analyze();  // resets offsets first
  EXPECT_EQ(r1.works_as_intended, r2.works_as_intended);
  EXPECT_EQ(r1.worst_slack, r2.worst_slack);
  EXPECT_EQ(r1.forward_cycles, r2.forward_cycles);
}

}  // namespace
}  // namespace hb
