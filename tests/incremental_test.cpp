// Differential harness for the incremental re-analysis layer.
//
// The contract under test (docs/ALGORITHMS.md §7): after any sequence of
// local changes — offset shifts, virtual-terminal edits, component-delay
// adjustments, cell resizes — SlackEngine::update() must reproduce a fresh
// full compute() bit for bit, serially and on a thread pool.  Slacks are
// integer picoseconds and every propagation step is a min/max, so there is
// no tolerance anywhere: every comparison below is exact equality.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>

#include "baseline/relaxation.hpp"
#include "gen/alu.hpp"
#include "gen/des.hpp"
#include "gen/random_network.hpp"
#include "netlist/stdcells.hpp"
#include "sta/cluster.hpp"
#include "sta/hummingbird.hpp"
#include "synth/redesign_loop.hpp"
#include "synth/resize.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace hb {
namespace {

// Everything compute() produces, captured for exact comparison.
struct Snapshot {
  std::vector<TimePs> launch;
  std::vector<TimePs> capture;
  std::vector<NodeTiming> nodes;
};

Snapshot take(const SlackEngine& engine) {
  Snapshot s;
  for (std::uint32_t i = 0; i < engine.sync().num_instances(); ++i) {
    s.launch.push_back(engine.launch_slack(SyncId(i)));
    s.capture.push_back(engine.capture_slack(SyncId(i)));
  }
  for (std::uint32_t n = 0; n < engine.graph().num_nodes(); ++n) {
    s.nodes.push_back(engine.node_timing(TNodeId(n)));
  }
  return s;
}

::testing::AssertionResult equal(const Snapshot& a, const Snapshot& b) {
  for (std::size_t i = 0; i < a.launch.size(); ++i) {
    if (a.launch[i] != b.launch[i]) {
      return ::testing::AssertionFailure()
             << "launch slack of sync " << i << ": " << a.launch[i] << " vs "
             << b.launch[i];
    }
    if (a.capture[i] != b.capture[i]) {
      return ::testing::AssertionFailure()
             << "capture slack of sync " << i << ": " << a.capture[i] << " vs "
             << b.capture[i];
    }
  }
  for (std::size_t n = 0; n < a.nodes.size(); ++n) {
    const NodeTiming& x = a.nodes[n];
    const NodeTiming& y = b.nodes[n];
    if (x.slack != y.slack || !(x.ready == y.ready) ||
        !(x.required == y.required) || x.has_ready != y.has_ready ||
        x.has_constraint != y.has_constraint ||
        x.settling_count != y.settling_count) {
      return ::testing::AssertionFailure()
             << "node timing of node " << n << " differs (slack " << x.slack
             << " vs " << y.slack << ", settling " << x.settling_count << " vs "
             << y.settling_count << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

RandomNetworkSpec spec_for(int i) {
  RandomNetworkSpec spec;
  spec.seed = 1000 + static_cast<std::uint64_t>(i);
  spec.num_clocks = 1 + i % 3;
  spec.banks = 2 + i % 3;
  spec.bank_width = 2 + (i / 3) % 3;
  spec.gates_per_stage = 6 + i % 9;
  spec.transparent_prob = 0.5 + 0.1 * (i % 5);
  return spec;
}

// The tentpole differential test: >= 50 seeded random multi-phase networks,
// each driven through >= 20 random perturbation steps.  Three engines share
// one SyncModel and one TimingGraph: `ref` recomputes from scratch every
// step, `inc` updates serially, `par` updates on a pool.  All three must
// agree exactly at every step.
TEST(IncrementalDifferential, RandomPerturbationsMatchFullCompute) {
  auto lib = make_standard_library();
  ThreadPool pool(4);
  std::uint64_t total_updates = 0;

  for (int net_i = 0; net_i < 50; ++net_i) {
    SCOPED_TRACE("network " + std::to_string(net_i));
    RandomNetwork net = make_random_network(lib, spec_for(net_i));
    DelayCalculator calc(net.design);
    TimingGraph graph(net.design, calc);
    SyncModel sync(graph, net.clocks, calc);
    ClusterSet clusters(graph, sync);

    SlackEngine ref(graph, clusters, sync);
    SlackEngine inc(graph, clusters, sync);
    SlackEngine par(graph, clusters, sync);
    ref.compute();
    inc.compute();
    par.compute(&pool);
    ASSERT_TRUE(equal(take(ref), take(inc)));
    ASSERT_TRUE(equal(take(ref), take(par)));

    // Top-level combinational cell instances (delay-perturbation targets).
    std::vector<InstId> comb;
    for (std::uint32_t i = 0; i < net.design.top().insts().size(); ++i) {
      const Instance& inst = net.design.top().inst(InstId(i));
      if (inst.is_cell() && !net.design.lib().cell(inst.cell).is_sequential()) {
        comb.push_back(InstId(i));
      }
    }

    Rng rng(900 + static_cast<std::uint64_t>(net_i));
    for (int step = 0; step < 20; ++step) {
      SCOPED_TRACE("step " + std::to_string(step));
      switch (rng.uniform(0, 3)) {
        case 0: {  // shift a transparent element within its legal range
          const SyncId id(static_cast<std::uint32_t>(rng.pick(sync.num_instances())));
          const SyncInstance& si = sync.at(id);
          if (!si.transparent || si.is_virtual) break;
          const TimePs delta =
              rng.uniform(-si.max_decrease(), si.max_increase());
          if (delta != 0) sync.at_mut(id).shift(delta);
          break;
        }
        case 1: {  // move a virtual terminal (PI arrival / PO required)
          const SyncId id(static_cast<std::uint32_t>(rng.pick(sync.num_instances())));
          if (!sync.at(id).is_virtual) break;
          sync.at_mut(id).v_offset += rng.uniform(-200, 200);
          break;
        }
        case 2: {  // reset all offsets to the initial state
          sync.reset_offsets();
          break;
        }
        default: {  // perturb a combinational instance's delays in place
          if (comb.empty()) break;
          const InstId inst = comb[rng.pick(comb.size())];
          calc.adjust_instance(inst, rng.uniform(-30, 60));
          const TimingGraph::DelayUpdate upd =
              graph.update_instance_delays(inst, calc);
          for (InstId s : upd.affected_sequential) {
            sync.refresh_element_delays(s, calc);
          }
          for (std::uint32_t ai : upd.changed_arcs) {
            inc.invalidate_node(graph.arc(ai).from);
            inc.invalidate_node(graph.arc(ai).to);
            par.invalidate_node(graph.arc(ai).from);
            par.invalidate_node(graph.arc(ai).to);
          }
          break;
        }
      }
      const std::vector<SyncId> changed = sync.drain_changed_offsets();
      inc.invalidate_offsets(changed);
      par.invalidate_offsets(changed);
      inc.update();
      par.update(&pool);
      ref.compute();
      ASSERT_TRUE(equal(take(ref), take(inc)));
      ASSERT_TRUE(equal(take(ref), take(par)));
    }
    total_updates += inc.incremental_stats().updates;
    EXPECT_EQ(inc.incremental_stats().full_computes, 1u);
  }
  EXPECT_GT(total_updates, 0u);
}

// Hummingbird-level differential: absorb random cell resizes through
// update_instance_delays (rebuilding when it reports the change cannot be
// absorbed) and compare every re-analysis against a freshly constructed
// analyser on the mutated design.
TEST(IncrementalDifferential, ResizesMatchFreshAnalyser) {
  auto lib = make_standard_library();
  for (int net_i = 0; net_i < 8; ++net_i) {
    SCOPED_TRACE("network " + std::to_string(net_i));
    RandomNetwork net = make_random_network(lib, spec_for(net_i));
    Design& design = net.design;
    auto hb = std::make_unique<Hummingbird>(design, net.clocks);
    hb->analyze();

    Rng rng(300 + static_cast<std::uint64_t>(net_i));
    int rebuilds = 0;
    for (int step = 0; step < 10; ++step) {
      SCOPED_TRACE("step " + std::to_string(step));
      const InstId inst(static_cast<std::uint32_t>(
          rng.pick(design.top().insts().size())));
      switch (upsize_and_update(design, inst, *hb)) {
        case ResizeUpdate::kNotResized:
          continue;  // sequential, submodule, or already strongest
        case ResizeUpdate::kAbsorbed:
          break;
        case ResizeUpdate::kRebuildRequired:
          hb = std::make_unique<Hummingbird>(design, net.clocks);
          ++rebuilds;
          break;
      }
      const Algorithm1Result got = hb->analyze();
      Hummingbird fresh(design, net.clocks);
      const Algorithm1Result want = fresh.analyze();
      ASSERT_EQ(got.worst_slack, want.worst_slack);
      ASSERT_EQ(got.works_as_intended, want.works_as_intended);
      ASSERT_TRUE(equal(take(fresh.engine()), take(hb->engine())));
    }
    // The point of the exercise: resizes are normally absorbed in place.
    EXPECT_LE(rebuilds, 5);
  }
}

// After in-place delay updates the graph must be indistinguishable from a
// rebuilt one for an independent decision procedure as well: the relaxation
// baseline (different semantics, same graph + element data).
TEST(IncrementalDifferential, RelaxationAgreesOnUpdatedGraph) {
  auto lib = make_standard_library();
  for (int net_i = 0; net_i < 6; ++net_i) {
    SCOPED_TRACE("network " + std::to_string(net_i));
    RandomNetworkSpec spec = spec_for(net_i);
    spec.banks = 2;
    spec.bank_width = 2;
    spec.gates_per_stage = 5;
    RandomNetwork net = make_random_network(lib, spec);
    Design& design = net.design;
    auto hb = std::make_unique<Hummingbird>(design, net.clocks);
    hb->analyze();

    Rng rng(77 + static_cast<std::uint64_t>(net_i));
    for (int step = 0; step < 5; ++step) {
      const InstId inst(static_cast<std::uint32_t>(
          rng.pick(design.top().insts().size())));
      if (upsize_and_update(design, inst, *hb) ==
          ResizeUpdate::kRebuildRequired) {
        hb = std::make_unique<Hummingbird>(design, net.clocks);
      }
    }
    hb->analyze();

    Hummingbird fresh(design, net.clocks);
    fresh.analyze();
    const RelaxationResult a = relaxation_analysis(hb->engine());
    const RelaxationResult b = relaxation_analysis(fresh.engine());
    EXPECT_EQ(a.works, b.works);
    EXPECT_EQ(a.converged, b.converged);
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.violations.size(), b.violations.size());
    EXPECT_EQ(a.settling_counts, b.settling_counts);
  }
}

// The redesign loop must reach the same design state in all three modes:
// rebuild-per-iteration, incremental serial, incremental parallel.  The
// parallel run doubles as the TSan hammer for pass evaluation.
TEST(IncrementalRedesign, LoopModesAgreeExactly) {
  auto lib = make_standard_library();
  auto run = [&](bool incremental, int threads) {
    AluSpec spec;
    spec.bits = 16;
    Design design = make_alu(lib, spec);
    RedesignOptions options;
    options.incremental = incremental;
    options.threads = threads;
    const RedesignResult res =
        run_redesign_loop(design, make_single_clock(ps(3400), ps(1400)), options);
    return std::make_pair(res, total_area_um2(design));
  };

  const auto [full, full_area] = run(false, 1);
  const auto [serial, serial_area] = run(true, 1);
  const auto [parallel, parallel_area] = run(true, 4);

  EXPECT_TRUE(full.met_timing);
  for (const auto* r : {&serial, &parallel}) {
    EXPECT_EQ(r->met_timing, full.met_timing);
    EXPECT_EQ(r->iterations, full.iterations);
    EXPECT_EQ(r->cells_resized, full.cells_resized);
    EXPECT_EQ(r->initial_worst_slack, full.initial_worst_slack);
    EXPECT_EQ(r->final_worst_slack, full.final_worst_slack);
    EXPECT_EQ(r->final_area_um2, full_area);
  }
  EXPECT_EQ(serial_area, full_area);
  EXPECT_EQ(parallel_area, full_area);
  // Incremental mode must actually avoid rebuilding the analyser: full mode
  // rebuilds once per iteration (including the final, successful one).
  EXPECT_EQ(full.analyser_rebuilds, full.iterations + 1);
  EXPECT_LT(serial.analyser_rebuilds, full.analyser_rebuilds);
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOncePerBatch) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> hits(500);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 500; ++i) {
    tasks.push_back([&hits, i] { hits[i].fetch_add(1); });
  }
  for (int round = 0; round < 25; ++round) {
    for (auto& h : hits) h.store(0);
    pool.run_batch(tasks);
    for (int i = 0; i < 500; ++i) ASSERT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPoolTest, PropagatesExceptionsAndStaysUsable) {
  ThreadPool pool(3);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.push_back([i] {
      if (i == 13) throw std::runtime_error("boom");
    });
  }
  EXPECT_THROW(pool.run_batch(tasks), std::runtime_error);

  std::atomic<int> count{0};
  std::vector<std::function<void()>> ok(100, [&count] { count.fetch_add(1); });
  pool.run_batch(ok);
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SerialFallbackWithOneThread) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  int count = 0;
  std::vector<std::function<void()>> tasks(10, [&count] { ++count; });
  pool.run_batch(tasks);
  EXPECT_EQ(count, 10);
}

}  // namespace
}  // namespace hb
