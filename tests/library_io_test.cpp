// Library file load/store round trips, including the full built-in library.
#include <gtest/gtest.h>

#include "netlist/library_io.hpp"
#include "netlist/stdcells.hpp"

namespace hb {
namespace {

TEST(LibraryIoTest, RoundTripsTheStandardLibrary) {
  auto lib = make_standard_library();
  const std::string text = library_to_string(*lib);
  auto re = library_from_string(text);
  EXPECT_EQ(library_to_string(*re), text);
  EXPECT_EQ(re->num_cells(), lib->num_cells());

  // Spot-check structural fidelity.
  const Cell& inv = re->cell(re->require("INVX1"));
  EXPECT_EQ(inv.kind(), CellKind::kCombinational);
  EXPECT_EQ(inv.family(), "INV");
  ASSERT_EQ(inv.arcs().size(), 1u);
  EXPECT_EQ(inv.arcs()[0].unate, Unate::kNegative);
  EXPECT_EQ(inv.arcs()[0].intrinsic_rise, 28);
  EXPECT_NEAR(inv.port(0).cap_ff, 1.8, 1e-9);

  const Cell& tl = re->cell(re->require("TLATCH"));
  EXPECT_EQ(tl.kind(), CellKind::kTransparentLatch);
  EXPECT_TRUE(tl.sync().active_high);
  EXPECT_EQ(tl.sync().setup, 55);
  EXPECT_EQ(tl.port(tl.sync().control).role, PortRole::kControl);

  const Cell& dff = re->cell(re->require("DFFT"));
  EXPECT_EQ(dff.sync().trigger, TriggerEdge::kTrailing);

  // Drive families survive (the redesign loop depends on them).
  EXPECT_TRUE(re->stronger_variant(re->require("NAND2X1")).valid());
}

TEST(LibraryIoTest, ParsesHandWrittenLibrary) {
  auto lib = library_from_string(
      "# tiny library\n"
      "library tiny\n"
      "cell BUF comb\n"
      "  area 3.5\n"
      "  in A 2.0\n"
      "  out Y\n"
      "  arc A Y pos 50 45 3.0 2.8\n"
      "endcell\n"
      "cell LAT transparent\n"
      "  active low\n"
      "  setup 40\n"
      "  in D 2.1\n"
      "  ctrl G 1.5\n"
      "  out Q\n"
      "  arc G Q none 70 70 3.0 3.0\n"
      "  arc D Q pos 60 60 3.0 3.0\n"
      "endcell\n");
  EXPECT_EQ(lib->name(), "tiny");
  EXPECT_EQ(lib->num_cells(), 2u);
  const Cell& lat = lib->cell(lib->require("LAT"));
  EXPECT_FALSE(lat.sync().active_high);
  EXPECT_EQ(lat.sync().data_in, lat.port_index("D"));
  EXPECT_EQ(lat.sync().control, lat.port_index("G"));
  EXPECT_EQ(lat.sync().data_out, lat.port_index("Q"));
}

TEST(LibraryIoTest, RejectsMalformedInput) {
  EXPECT_THROW(library_from_string(""), Error);
  EXPECT_THROW(library_from_string("library l\ncell A comb\n"), Error);  // unterminated
  EXPECT_THROW(library_from_string("library l\narea 2\n"), Error);  // outside cell
  EXPECT_THROW(library_from_string("library l\ncell A bogus\nendcell\n"), Error);
  EXPECT_THROW(
      library_from_string("library l\ncell A comb\n  arc X Y pos 1 1 1 1\nendcell\n"),
      Error);  // unknown ports
  EXPECT_THROW(
      library_from_string("library l\ncell A edge\n  in D 1\n  out Q\nendcell\n"),
      Error);  // sequential without ctrl
  EXPECT_THROW(
      library_from_string("library l\ncell A comb\n  in D x\nendcell\n"),
      Error);  // bad number
}

TEST(LibraryIoTest, ErrorsCarryLineNumbers) {
  try {
    library_from_string("library l\ncell A comb\n  bogus\nendcell\n");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

}  // namespace
}  // namespace hb
