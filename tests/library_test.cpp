#include <gtest/gtest.h>

#include "netlist/stdcells.hpp"

namespace hb {
namespace {

class StdCellsTest : public ::testing::Test {
 protected:
  std::shared_ptr<const Library> lib_ = make_standard_library();
};

TEST_F(StdCellsTest, HasExpectedFamilies) {
  for (const char* name :
       {"INVX1", "INVX2", "INVX4", "NAND2X1", "NOR3X4", "XOR2X2", "MUX2X1",
        "CLKBUF", "DFFT", "DFFL", "TLATCH", "TLATCHN", "TRIBUF"}) {
    EXPECT_TRUE(lib_->find(name).valid()) << name;
  }
  EXPECT_FALSE(lib_->find("NAND4X1").valid());
}

TEST_F(StdCellsTest, RequireThrowsOnUnknown) {
  EXPECT_THROW(lib_->require("NOPE"), Error);
  EXPECT_NO_THROW(lib_->require("INVX1"));
}

TEST_F(StdCellsTest, FamilyOrderedByDrive) {
  const auto members = lib_->family_members("NAND2");
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(lib_->cell(members[0]).name(), "NAND2X1");
  EXPECT_EQ(lib_->cell(members[2]).name(), "NAND2X4");
  EXPECT_LT(lib_->cell(members[0]).drive(), lib_->cell(members[2]).drive());
}

TEST_F(StdCellsTest, StrongerAndWeakerVariants) {
  const CellId x1 = lib_->require("INVX1");
  const CellId x2 = lib_->stronger_variant(x1);
  ASSERT_TRUE(x2.valid());
  EXPECT_EQ(lib_->cell(x2).name(), "INVX2");
  EXPECT_EQ(lib_->weaker_variant(x2), x1);
  const CellId x4 = lib_->stronger_variant(x2);
  ASSERT_TRUE(x4.valid());
  EXPECT_FALSE(lib_->stronger_variant(x4).valid());
  EXPECT_FALSE(lib_->weaker_variant(x1).valid());
}

TEST_F(StdCellsTest, StrongerVariantHasLowerSlopeHigherCap) {
  const Cell& x1 = lib_->cell(lib_->require("NAND2X1"));
  const Cell& x4 = lib_->cell(lib_->require("NAND2X4"));
  EXPECT_LT(x4.arcs()[0].slope_rise, x1.arcs()[0].slope_rise);
  EXPECT_GT(x4.port(0).cap_ff, x1.port(0).cap_ff);
  EXPECT_GT(x4.area_um2(), x1.area_um2());
}

TEST_F(StdCellsTest, VariantsSharePortLayout) {
  for (const char* family : {"INV", "NAND2", "XOR2", "MUX2", "AOI21"}) {
    const auto members = lib_->family_members(family);
    ASSERT_GE(members.size(), 2u) << family;
    const Cell& base = lib_->cell(members[0]);
    for (std::size_t i = 1; i < members.size(); ++i) {
      const Cell& other = lib_->cell(members[i]);
      ASSERT_EQ(base.ports().size(), other.ports().size());
      for (std::uint32_t p = 0; p < base.ports().size(); ++p) {
        EXPECT_EQ(base.port(p).name, other.port(p).name);
        EXPECT_EQ(base.port(p).direction, other.port(p).direction);
      }
    }
  }
}

TEST_F(StdCellsTest, InverterIsNegativeUnate) {
  const Cell& inv = lib_->cell(lib_->require("INVX1"));
  ASSERT_EQ(inv.arcs().size(), 1u);
  EXPECT_EQ(inv.arcs()[0].unate, Unate::kNegative);
}

TEST_F(StdCellsTest, XorIsNonUnate) {
  const Cell& x = lib_->cell(lib_->require("XOR2X1"));
  for (const TimingArc& arc : x.arcs()) EXPECT_EQ(arc.unate, Unate::kNone);
}

TEST_F(StdCellsTest, SequentialCellsHaveSyncSpecs) {
  const Cell& dff = lib_->cell(lib_->require("DFFT"));
  EXPECT_TRUE(dff.is_sequential());
  EXPECT_EQ(dff.kind(), CellKind::kEdgeTriggeredLatch);
  EXPECT_EQ(dff.sync().trigger, TriggerEdge::kTrailing);
  EXPECT_GT(dff.sync().setup, 0);
  EXPECT_EQ(dff.port(dff.sync().control).role, PortRole::kControl);

  const Cell& tl = lib_->cell(lib_->require("TLATCH"));
  EXPECT_EQ(tl.kind(), CellKind::kTransparentLatch);
  EXPECT_TRUE(tl.sync().active_high);
  const Cell& tln = lib_->cell(lib_->require("TLATCHN"));
  EXPECT_FALSE(tln.sync().active_high);

  const Cell& tb = lib_->cell(lib_->require("TRIBUF"));
  EXPECT_EQ(tb.kind(), CellKind::kTristateDriver);
}

TEST_F(StdCellsTest, CombCellHasNoSync) {
  const Cell& inv = lib_->cell(lib_->require("INVX1"));
  EXPECT_FALSE(inv.has_sync());
  EXPECT_THROW(inv.sync(), Error);
}

TEST_F(StdCellsTest, TransparentLatchHasDataArc) {
  const Cell& tl = lib_->cell(lib_->require("TLATCH"));
  bool has_dq = false, has_cq = false;
  for (const TimingArc& arc : tl.arcs()) {
    if (arc.from_port == tl.sync().data_in) has_dq = true;
    if (arc.from_port == tl.sync().control) has_cq = true;
  }
  EXPECT_TRUE(has_dq);
  EXPECT_TRUE(has_cq);

  const Cell& dff = lib_->cell(lib_->require("DFFT"));
  for (const TimingArc& arc : dff.arcs()) {
    EXPECT_NE(arc.from_port, dff.sync().data_in)
        << "edge-triggered latch must not have a combinational D->Q arc";
  }
}

TEST(LibraryTest, DuplicateCellNameRejected) {
  Library lib("l");
  lib.add_cell(Cell("A", CellKind::kCombinational));
  EXPECT_THROW(lib.add_cell(Cell("A", CellKind::kCombinational)), Error);
}

TEST(LibraryTest, PortLookup) {
  Cell c("G", CellKind::kCombinational);
  c.add_port({"A", PortDirection::kInput, PortRole::kData, 1.0});
  c.add_port({"Y", PortDirection::kOutput, PortRole::kData, 0.0});
  EXPECT_EQ(c.port_index("A"), 0u);
  EXPECT_EQ(c.port_index("Y"), 1u);
  EXPECT_THROW(c.port_index("Z"), Error);
  EXPECT_FALSE(c.find_port("Z").has_value());
}

}  // namespace
}  // namespace hb
