// Multi-frequency behaviour: elements clocked at a multiple of the overall
// frequency expand into several generic instances, each pairing with the
// "very next" closure — the engine must constrain every launch/capture
// instance pair with its exact cyclic separation.
#include <gtest/gtest.h>

#include "constraints/feasibility.hpp"
#include "netlist/builder.hpp"
#include "netlist/stdcells.hpp"
#include "sta/hummingbird.hpp"

namespace hb {
namespace {

class MultiFreqTest : public ::testing::Test {
 protected:
  std::shared_ptr<const Library> lib_ = make_standard_library();

  static SyncId find_instance(const SyncModel& sync, const std::string& label) {
    for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
      if (sync.at(SyncId(i)).label == label) return SyncId(i);
    }
    return SyncId::invalid();
  }
};

// Fast-clock flip-flop feeding a slow-clock flip-flop: the binding launch
// is the *last* fast pulse before the slow capture edge.
TEST_F(MultiFreqTest, FastToSlowUsesLastLaunch) {
  TopBuilder b("f2s", lib_);
  const NetId fast = b.port_in("fast", true);
  const NetId slow = b.port_in("slow", true);
  const NetId q1 = b.latch("DFFT", b.port_in("d"), fast, "src");
  b.port_out_net("q", b.latch("DFFT", q1, slow, "dst"));
  const Design design = b.finish();

  ClockSet clocks;
  // fast: trailing edges at 4 and 14 ns; slow: trailing edge at 8 ns.
  clocks.add_simple_clock("fast", ns(10), 0, ns(4));
  clocks.add_simple_clock("slow", ns(20), 0, ns(8));
  Hummingbird analyser(design, clocks);
  analyser.analyze();

  const SyncModel& sync = analyser.sync_model();
  const SlackEngine& engine = analyser.engine();
  // dst closes at 8 - setup(65); launches assert at 4 and 14 (+ D_cz).
  // Launch@4 -> capture@8: window 4000; launch@14 -> capture@8 next period:
  // window 14000.  D_cz = 95 + round(3.6 * 3.3fF load) = 107.
  const TimePs dcz = 114;  // 95 + round(3.6 * 5.4 fF)
  const TimePs slack_tight = (ns(8) - 65) - (ns(4) + dcz);
  const SyncId dst = find_instance(sync, "dst#0");
  EXPECT_EQ(engine.capture_slack(dst), slack_tight);
  // Both launch instances have well-defined slacks; the later one is looser
  // by the extra 10 ns of separation.
  const TimePs s0 = engine.launch_slack(find_instance(sync, "src#0"));
  const TimePs s1 = engine.launch_slack(find_instance(sync, "src#1"));
  EXPECT_EQ(s0, slack_tight);
  EXPECT_EQ(s1, slack_tight + ns(10));
}

// Slow launch into a fast capture: each capture instance pairs with the
// single slow launch, at different separations.
TEST_F(MultiFreqTest, SlowToFastCapturesBothPulses) {
  TopBuilder b("s2f", lib_);
  const NetId fast = b.port_in("fast", true);
  const NetId slow = b.port_in("slow", true);
  const NetId q1 = b.latch("DFFT", b.port_in("d"), slow, "src");
  b.port_out_net("q", b.latch("DFFT", q1, fast, "dst"));
  const Design design = b.finish();

  ClockSet clocks;
  clocks.add_simple_clock("fast", ns(10), 0, ns(4));
  clocks.add_simple_clock("slow", ns(20), 0, ns(8));
  Hummingbird analyser(design, clocks);
  analyser.analyze();

  const SyncModel& sync = analyser.sync_model();
  const SlackEngine& engine = analyser.engine();
  const TimePs dcz = 114;  // 95 + round(3.6 * 5.4 fF)
  // Launch asserts at 8 ns + dcz; captures close at 4 ns (next period:
  // 24 ns => window 16 ns) and at 14 ns (window 6 ns).
  const SyncId cap0 = find_instance(sync, "dst#0");
  const SyncId cap1 = find_instance(sync, "dst#1");
  EXPECT_EQ(engine.capture_slack(cap0), (ns(24) - 65) - (ns(8) + dcz));
  EXPECT_EQ(engine.capture_slack(cap1), (ns(14) - 65) - (ns(8) + dcz));
  // The launch's slack is bound by the tighter pairing.
  EXPECT_EQ(engine.launch_slack(find_instance(sync, "src#0")),
            (ns(14) - 65) - (ns(8) + dcz));
}

// A multi-pulse clock (two pulses per period) on a transparent latch gives
// two independent generic instances whose offsets move independently.
TEST_F(MultiFreqTest, MultiPulseTransparentInstancesIndependent) {
  TopBuilder b("mp", lib_);
  const NetId clk = b.port_in("clk", true);
  const NetId d = b.port_in("d");
  b.port_out_net("q", b.latch("TLATCH", d, clk, "lat"));
  const Design design = b.finish();

  ClockSet clocks;
  clocks.add_clock("clk", ns(20), {ClockPulse{0, ns(4)}, ClockPulse{ns(10), ns(16)}});
  Hummingbird analyser(design, clocks);
  analyser.analyze();

  const SyncModel& sync = analyser.sync_model();
  const SyncId i0 = find_instance(sync, "lat#0");
  const SyncId i1 = find_instance(sync, "lat#1");
  ASSERT_TRUE(i0.valid());
  ASSERT_TRUE(i1.valid());
  EXPECT_EQ(sync.at(i0).width, ns(4));
  EXPECT_EQ(sync.at(i1).width, ns(6));
  EXPECT_EQ(sync.at(i0).ideal_assert, 0);
  EXPECT_EQ(sync.at(i1).ideal_assert, ns(10));
}

// The engine and the oracle must agree across mixed-rate configurations
// (regression for the pass-assignment correctness with shared pins).
TEST_F(MultiFreqTest, OracleAgreementOnMixedRates) {
  for (int depth : {4, 16, 40, 80}) {
    TopBuilder b("mix" + std::to_string(depth), lib_);
    const NetId fast = b.port_in("fast", true);
    const NetId slow = b.port_in("slow", true);
    NetId n = b.latch("DFFT", b.port_in("d"), fast, "src");
    for (int i = 0; i < depth; ++i) n = b.gate("INVX1", {n});
    const NetId q1 = b.latch("TLATCH", n, slow, "mid");
    NetId m = q1;
    for (int i = 0; i < depth / 2; ++i) m = b.gate("INVX1", {m});
    b.port_out_net("q", b.latch("DFFT", m, fast, "dst"));
    const Design design = b.finish();

    ClockSet clocks;
    clocks.add_simple_clock("fast", ns(5), 0, ns(2));
    clocks.add_simple_clock("slow", ns(10), ns(4), ns(8));
    Hummingbird analyser(design, clocks);
    const Algorithm1Result res = analyser.analyze();
    const FeasibilityResult feas = check_intended_behaviour(analyser.engine());
    if (res.works_as_intended) {
      EXPECT_TRUE(feas.feasible) << depth;
    }
    if (!feas.feasible) {
      EXPECT_FALSE(res.works_as_intended) << depth;
    }
  }
}

// Every capture instance's assigned pass must place each connected launch
// instance strictly before the capture's closure (the invariant the
// Section 7 correctness argument rests on), checked on a dense mixed-rate
// cluster.
TEST_F(MultiFreqTest, AssignedPassOrdersLaunchesBeforeCaptures) {
  TopBuilder b("dense", lib_);
  const NetId fast = b.port_in("fast", true);
  const NetId slow = b.port_in("slow", true);
  std::vector<NetId> sources;
  sources.push_back(b.latch("DFFT", b.port_in("d0"), fast, "sf"));
  sources.push_back(b.latch("DFFT", b.port_in("d1"), slow, "ss"));
  sources.push_back(b.latch("TLATCH", b.port_in("d2"), slow, "ts"));
  const NetId mix1 = b.gate("NAND2X1", {sources[0], sources[1]});
  const NetId mix2 = b.gate("NAND2X1", {mix1, sources[2]});
  b.port_out_net("q0", b.latch("DFFT", mix2, fast, "cf"));
  b.port_out_net("q1", b.latch("TLATCH", mix2, slow, "cs"));
  const Design design = b.finish();

  ClockSet clocks;
  clocks.add_simple_clock("fast", ns(8), 0, ns(3));
  clocks.add_simple_clock("slow", ns(16), ns(6), ns(12));
  Hummingbird analyser(design, clocks);
  analyser.analyze();

  const SlackEngine& engine = analyser.engine();
  const SyncModel& sync = analyser.sync_model();
  const ClusterSet& clusters = engine.clusters();
  for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
    const SyncInstance& cap = sync.at(SyncId(i));
    if (!cap.data_in.valid()) continue;
    const ClusterId c = clusters.cluster_of(cap.data_in);
    if (!c.valid() || engine.num_passes(c) == 0) continue;
    const std::size_t pass = engine.assigned_pass(SyncId(i));
    const ClockEdgeGraph& edges = engine.edge_graph(c);
    const std::size_t brk = engine.breaks(c)[pass];
    const TimePs close_pos = edges.linear_close(cap.ideal_close, brk);
    for (TNodeId src : clusters.cluster(c).source_nodes) {
      for (SyncId li : sync.launches_at(src)) {
        const TimePs assert_pos =
            edges.linear_assert(sync.at(li).ideal_assert, brk);
        EXPECT_LT(assert_pos, close_pos)
            << sync.at(li).label << " vs " << cap.label;
      }
    }
  }
}

}  // namespace
}  // namespace hb
