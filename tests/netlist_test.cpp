#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "netlist/flatten.hpp"
#include "netlist/netlist_io.hpp"
#include "netlist/stdcells.hpp"
#include "netlist/validate.hpp"

namespace hb {
namespace {

class NetlistTest : public ::testing::Test {
 protected:
  std::shared_ptr<const Library> lib_ = make_standard_library();

  /// PI -> INV -> DFF -> PO with a clock port.
  Design make_tiny() {
    TopBuilder b("tiny", lib_);
    const NetId clk = b.port_in("clk", true);
    const NetId d = b.port_in("d");
    const NetId inv = b.gate("INVX1", {d}, "u1");
    const NetId q = b.latch("DFFT", inv, clk, "ff");
    b.port_out_net("q", q);
    return b.finish();
  }
};

TEST_F(NetlistTest, BuilderProducesConnectedDesign) {
  const Design d = make_tiny();
  const Module& top = d.top();
  EXPECT_EQ(top.insts().size(), 2u);
  EXPECT_EQ(d.total_cell_count(), 2u);
  EXPECT_TRUE(top.find_inst("u1").valid());
  EXPECT_TRUE(top.find_inst("ff").valid());
  EXPECT_FALSE(top.find_inst("nope").valid());
  EXPECT_TRUE(validate(d).ok());
}

TEST_F(NetlistTest, DuplicateNamesRejected) {
  TopBuilder b("x", lib_);
  b.net("n1");
  Module& m = b.module();
  EXPECT_THROW(m.add_net("n1"), Error);
  m.add_cell_inst("i1", lib_->require("INVX1"), 2);
  EXPECT_THROW(m.add_cell_inst("i1", lib_->require("INVX1"), 2), Error);
  m.add_port("p", PortDirection::kInput);
  EXPECT_THROW(m.add_port("p", PortDirection::kOutput), Error);
}

TEST_F(NetlistTest, DoubleConnectRejected) {
  TopBuilder b("x", lib_);
  Module& m = b.module();
  const NetId n1 = b.net();
  const NetId n2 = b.net();
  const InstId i = m.add_cell_inst("i", lib_->require("INVX1"), 2);
  m.connect(i, 0, n1);
  EXPECT_THROW(m.connect(i, 0, n2), Error);
}

TEST_F(NetlistTest, RoundTripThroughText) {
  const Design d = make_tiny();
  const std::string text = netlist_to_string(d);
  const Design d2 = netlist_from_string(text, lib_);
  EXPECT_EQ(netlist_to_string(d2), text);
  EXPECT_EQ(d2.name(), "tiny");
  EXPECT_EQ(d2.total_cell_count(), 2u);
  EXPECT_TRUE(validate(d2).ok());
}

TEST_F(NetlistTest, ParserRejectsMalformedInput) {
  EXPECT_THROW(netlist_from_string("", lib_), Error);
  EXPECT_THROW(netlist_from_string("module m\n", lib_), Error);
  EXPECT_THROW(netlist_from_string("design d\nmodule m\n", lib_), Error);  // unterminated
  EXPECT_THROW(netlist_from_string("design d\ninst a INVX1\n", lib_), Error);
  EXPECT_THROW(netlist_from_string("design d\nmodule m\ninst a NOPE\nendmodule\n", lib_),
               Error);
  EXPECT_THROW(
      netlist_from_string("design d\nmodule m\nnet n\nconn n a.Y\nendmodule\n", lib_),
      Error);
  EXPECT_THROW(netlist_from_string("design d\nmodule m\nendmodule\ntop other\n", lib_),
               Error);
}

TEST_F(NetlistTest, ParserAcceptsCommentsAndBlanks) {
  const Design d = netlist_from_string(
      "# header comment\n"
      "design d\n"
      "\n"
      "module m\n"
      "  port clk input clock   # the clock\n"
      "  net n\n"
      "endmodule\n"
      "top m\n",
      lib_);
  EXPECT_EQ(d.top().ports().size(), 1u);
  EXPECT_TRUE(d.top().port(0).is_clock);
}

TEST_F(NetlistTest, HierarchicalRoundTripAndFlatten) {
  TopBuilder b("hier", lib_);
  // Submodule: two-inverter buffer chain.
  const ModuleId sub_id = b.design().add_module("buf2");
  {
    Module& sub = b.design().module_mut(sub_id);
    const NetId a = sub.add_net("a");
    const NetId mid = sub.add_net("mid");
    const NetId y = sub.add_net("y");
    sub.bind_port(sub.add_port("A", PortDirection::kInput), a);
    sub.bind_port(sub.add_port("Y", PortDirection::kOutput), y);
    const CellId inv = lib_->require("INVX1");
    const InstId i1 = sub.add_cell_inst("i1", inv, 2);
    const InstId i2 = sub.add_cell_inst("i2", inv, 2);
    sub.connect(i1, 0, a);
    sub.connect(i1, 1, mid);
    sub.connect(i2, 0, mid);
    sub.connect(i2, 1, y);
  }
  const NetId clk = b.port_in("clk", true);
  const NetId d = b.port_in("d");
  const NetId mid = b.net("mid");
  b.submodule(sub_id, {d, mid}, "m0");
  const NetId q = b.latch("DFFT", mid, clk, "ff");
  b.port_out_net("q", q);
  const Design design = b.finish();

  EXPECT_EQ(design.total_cell_count(), 3u);
  EXPECT_TRUE(validate(design).ok());

  // Text round trip with hierarchy (children emitted before parents).
  const std::string text = netlist_to_string(design);
  const Design re = netlist_from_string(text, lib_);
  EXPECT_EQ(re.total_cell_count(), 3u);
  EXPECT_TRUE(validate(re).ok());

  // Flatten: one module, prefixed names, same cell count.
  const Design flat = flatten(design);
  EXPECT_EQ(flat.num_modules(), 1u);
  EXPECT_EQ(flat.total_cell_count(), 3u);
  EXPECT_TRUE(flat.top().find_inst("m0/i1").valid());
  EXPECT_TRUE(flat.top().find_inst("ff").valid());
  EXPECT_TRUE(validate(flat).ok());
}

TEST_F(NetlistTest, ValidateCatchesUnconnectedPort) {
  TopBuilder b("bad", lib_);
  Module& m = b.module();
  m.add_cell_inst("i", lib_->require("INVX1"), 2);
  const Design d = b.finish();
  const auto report = validate(d);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("unconnected"), std::string::npos);
}

TEST_F(NetlistTest, ValidateCatchesMultipleDrivers) {
  TopBuilder b("bad", lib_);
  const NetId a = b.port_in("a");
  const NetId shared = b.net("sh");
  Module& m = b.module();
  const CellId inv = lib_->require("INVX1");
  const InstId i1 = m.add_cell_inst("i1", inv, 2);
  const InstId i2 = m.add_cell_inst("i2", inv, 2);
  m.connect(i1, 0, a);
  m.connect(i1, 1, shared);
  m.connect(i2, 0, a);
  m.connect(i2, 1, shared);
  const Design d = b.finish();
  const auto report = validate(d);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("drivers"), std::string::npos);
}

TEST_F(NetlistTest, ValidateAllowsTristateBus) {
  TopBuilder b("bus", lib_);
  const NetId clk = b.port_in("clk", true);
  const NetId a = b.port_in("a");
  const NetId bn = b.port_in("b");
  const NetId bus = b.net("bus");
  Module& m = b.module();
  const CellId tb = lib_->require("TRIBUF");
  const SyncSpec& sync = lib_->cell(tb).sync();
  for (int i = 0; i < 2; ++i) {
    const InstId inst = m.add_cell_inst("t" + std::to_string(i), tb, 3);
    m.connect(inst, sync.data_in, i == 0 ? a : bn);
    m.connect(inst, sync.control, clk);
    m.connect(inst, sync.data_out, bus);
  }
  b.port_out_net("y", bus);
  EXPECT_TRUE(validate(b.finish()).ok());
}

TEST_F(NetlistTest, ValidateCatchesCombinationalCycle) {
  TopBuilder b("cyc", lib_);
  const NetId a = b.port_in("a");
  Module& m = b.module();
  const CellId nand = lib_->require("NAND2X1");
  const NetId n1 = b.net("n1");
  const NetId n2 = b.net("n2");
  const InstId g1 = m.add_cell_inst("g1", nand, 3);
  const InstId g2 = m.add_cell_inst("g2", nand, 3);
  m.connect(g1, 0, a);
  m.connect(g1, 1, n2);
  m.connect(g1, 2, n1);
  m.connect(g2, 0, a);
  m.connect(g2, 1, n1);
  m.connect(g2, 2, n2);
  const auto report = validate(b.finish());
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("cycle"), std::string::npos);
}

TEST_F(NetlistTest, ValidateCatchesNonMonotonicControl) {
  // Control = XOR(clk, clk) is not a monotonic function of the clock.
  TopBuilder b("badctl", lib_);
  const NetId clk = b.port_in("clk", true);
  const NetId d = b.port_in("d");
  const NetId ctl = b.gate("XOR2X1", {clk, clk});
  const NetId q = b.latch("TLATCH", d, ctl, "lat");
  b.port_out_net("q", q);
  const auto report = validate(b.finish());
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("monotonic"), std::string::npos);
}

TEST_F(NetlistTest, ValidateCatchesLatchWithoutClock) {
  TopBuilder b("noclk", lib_);
  const NetId d = b.port_in("d");
  const NetId en = b.port_in("en");  // plain data port, not a clock
  const NetId q = b.latch("TLATCH", d, en, "lat");
  b.port_out_net("q", q);
  const auto report = validate(b.finish());
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("clock"), std::string::npos);
}

TEST_F(NetlistTest, ValidateRejectsSequentialSubmodule) {
  TopBuilder b("seq_sub", lib_);
  const ModuleId sub_id = b.design().add_module("inner");
  {
    Module& sub = b.design().module_mut(sub_id);
    const NetId d = sub.add_net("d");
    const NetId ck = sub.add_net("ck");
    const NetId q = sub.add_net("q");
    sub.bind_port(sub.add_port("D", PortDirection::kInput), d);
    sub.bind_port(sub.add_port("CK", PortDirection::kInput), ck);
    sub.bind_port(sub.add_port("Q", PortDirection::kOutput), q);
    const CellId dff = lib_->require("DFFT");
    const SyncSpec& sync = lib_->cell(dff).sync();
    const InstId i = sub.add_cell_inst("ff", dff, 3);
    sub.connect(i, sync.data_in, d);
    sub.connect(i, sync.control, ck);
    sub.connect(i, sync.data_out, q);
  }
  const NetId clk = b.port_in("clk", true);
  const NetId d = b.port_in("d");
  const NetId q = b.net("q");
  b.submodule(sub_id, {d, clk, q}, "m0");
  b.port_out_net("out", q);
  const auto report = validate(b.finish());
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("synchronising"), std::string::npos);
}

TEST_F(NetlistTest, SlowNetFlags) {
  Design d = make_tiny();
  EXPECT_EQ(d.num_slow_nets(), 0u);
  d.flag_slow_net(NetId(0));
  EXPECT_TRUE(d.is_slow_net(NetId(0)));
  EXPECT_FALSE(d.is_slow_net(NetId(1)));
  d.clear_slow_flags();
  EXPECT_EQ(d.num_slow_nets(), 0u);
}

}  // namespace
}  // namespace hb
