// Property tests validating Algorithm 1 against the independent
// difference-constraint feasibility oracle (the paper's central
// proposition, decided exactly by Bellman-Ford):
//
//   * oracle infeasible  ==> Algorithm 1 reports "not as intended";
//   * Algorithm 1 "as intended" ==> oracle feasible;
//   * when the oracle is feasible, installing its O_dz solution into the
//     engine must yield all-nonnegative terminal slacks (the solution is a
//     witness, checked independently of the transfer heuristics).
//
// Run over randomized multi-clock latch networks and over period sweeps of
// structured pipelines (clock speed moves designs across the
// feasible/infeasible boundary).
#include <gtest/gtest.h>

#include "constraints/difference_system.hpp"
#include "constraints/feasibility.hpp"
#include "gen/pipeline.hpp"
#include "gen/random_network.hpp"
#include "netlist/stdcells.hpp"
#include "netlist/validate.hpp"
#include "sta/hummingbird.hpp"

namespace hb {
namespace {

// ---------------------------------------------------------------------------
// DifferenceSystem unit tests.

TEST(DifferenceSystemTest, FeasibleChainProducesWitness) {
  DifferenceSystem sys;
  const int x = sys.add_variable("x");
  const int y = sys.add_variable("y");
  sys.add_lower(x, 3);        // x >= 3
  sys.add_upper(y, 10);       // y <= 10
  sys.add_diff_ge(y, x, 2);   // y - x >= 2
  const auto res = sys.solve();
  ASSERT_TRUE(res.feasible);
  EXPECT_GE(res.solution[0], 3);
  EXPECT_LE(res.solution[1], 10);
  EXPECT_GE(res.solution[1] - res.solution[0], 2);
}

TEST(DifferenceSystemTest, InfeasibleBoundsDetected) {
  DifferenceSystem sys;
  const int x = sys.add_variable("x");
  sys.add_lower(x, 5);
  sys.add_upper(x, 4);
  EXPECT_FALSE(sys.solve().feasible);
}

TEST(DifferenceSystemTest, NegativeCycleDetected) {
  DifferenceSystem sys;
  const int x = sys.add_variable("x");
  const int y = sys.add_variable("y");
  sys.add_diff_ge(y, x, 1);  // y >= x + 1
  sys.add_diff_ge(x, y, 0);  // x >= y
  EXPECT_FALSE(sys.solve().feasible);
}

TEST(DifferenceSystemTest, ContradictionShortCircuits) {
  DifferenceSystem sys;
  sys.add_contradiction("rigid path too slow");
  const auto res = sys.solve();
  EXPECT_FALSE(res.feasible);
  EXPECT_EQ(res.reason, "rigid path too slow");
}

TEST(DifferenceSystemTest, EmptySystemFeasible) {
  DifferenceSystem sys;
  EXPECT_TRUE(sys.solve().feasible);
}

TEST(DifferenceSystemTest, LargeChainSolves) {
  DifferenceSystem sys;
  std::vector<int> vars;
  for (int i = 0; i < 200; ++i) vars.push_back(sys.add_variable("v"));
  for (int i = 1; i < 200; ++i) sys.add_diff_ge(vars[i], vars[i - 1], 1);
  sys.add_lower(vars[0], 0);
  sys.add_upper(vars[199], 199);
  const auto res = sys.solve();
  ASSERT_TRUE(res.feasible);
  EXPECT_GE(res.solution[199] - res.solution[0], 199);
}

// ---------------------------------------------------------------------------
// Agreement between Algorithm 1 and the oracle.

/// Install a satisfying O_dz assignment and verify every terminal slack is
/// nonnegative — the witness check.
void check_witness(Hummingbird& analyser, const FeasibilityResult& feas) {
  SyncModel& sync = analyser.sync_model_mut();
  for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
    SyncInstance& si = sync.at_mut(SyncId(i));
    if (!si.transparent || si.is_virtual) continue;
    si.odz = feas.odz_solution[i];
    si.ozd = si.width + si.odz + si.ddz;
  }
  analyser.engine_mut().compute();
  EXPECT_GE(analyser.engine().worst_terminal_slack(), 0)
      << "oracle witness violates some path constraint";
}

void check_agreement(const Design& design, const ClockSet& clocks) {
  Hummingbird analyser(design, clocks);
  const Algorithm1Result res = analyser.analyze();
  const FeasibilityResult feas = check_intended_behaviour(analyser.engine());

  if (!feas.feasible) {
    EXPECT_FALSE(res.works_as_intended)
        << "Algorithm 1 accepted an infeasible system";
  }
  if (res.works_as_intended) {
    EXPECT_TRUE(feas.feasible) << "Algorithm 1 accepted, oracle refuses";
  }
  if (feas.feasible) {
    check_witness(analyser, feas);
    // Conservative misclassification is allowed only at exact margins:
    // a feasible system rejected by Algorithm 1 must show worst slack 0,
    // never strictly negative... the transfer heuristic is exact otherwise.
    if (!res.works_as_intended) {
      EXPECT_GE(res.worst_slack, 0)
          << "Algorithm 1 reports a strict violation on a feasible system";
    }
  }
}

class OracleRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleRandomTest, AgreesOnRandomNetworks) {
  auto lib = make_standard_library();
  RandomNetworkSpec spec;
  spec.seed = GetParam();
  spec.num_clocks = 1 + static_cast<int>(GetParam() % 3);
  spec.banks = 2 + static_cast<int>(GetParam() % 3);
  spec.bank_width = 3;
  spec.gates_per_stage = 12;
  // Vary the base period across seeds so some designs fail and some pass.
  spec.base_period = ns(4) + static_cast<TimePs>((GetParam() * 977) % 9000);
  const RandomNetwork net = make_random_network(lib, spec);
  ASSERT_TRUE(validate(net.design).ok()) << validate(net.design).to_string();
  check_agreement(net.design, net.clocks);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleRandomTest,
                         ::testing::Range<std::uint64_t>(1, 61));

class OraclePipelineTest : public ::testing::TestWithParam<int> {};

TEST_P(OraclePipelineTest, AgreesAcrossPeriodSweep) {
  auto lib = make_standard_library();
  PipelineSpec spec;
  spec.stage_depths = {70, 25, 45};
  spec.width = 2;
  spec.latch_cell = "TLATCH";
  spec.seed = 17;
  const Design design = make_pipeline(lib, spec);
  const TimePs period = ns(GetParam());
  check_agreement(design, make_two_phase_clocks(period));
}

INSTANTIATE_TEST_SUITE_P(Periods, OraclePipelineTest, ::testing::Range(3, 16));

TEST(OracleTest, CountsConstraintsAndVariables) {
  auto lib = make_standard_library();
  PipelineSpec spec;
  spec.stage_depths = {10, 10};
  spec.width = 1;
  spec.latch_cell = "TLATCH";
  const Design design = make_pipeline(lib, spec);
  Hummingbird analyser(design, make_two_phase_clocks(ns(10)));
  analyser.analyze();
  const FeasibilityResult feas = check_intended_behaviour(analyser.engine());
  // Three transparent latch banks of width 1 (two stages + final bank).
  EXPECT_EQ(feas.num_variables, 3u);
  // PI->L0, L0->L1, L1->L2, L2->PO.
  EXPECT_EQ(feas.num_path_constraints, 4u);
}

}  // namespace
}  // namespace hb
