// Determinism of the level-parallel + SIMD wavefront kernels.
//
// The contract (docs/PERFORMANCE.md §8): run_analysis_pass_into produces
// byte-identical PassResult arrays — not just semantically equal slots —
// for every combination of kernel variant (forced scalar vs auto-dispatched
// SIMD) and thread count (serial, 2, 8), on every generator network.  Worst-
// path reports, which read the cached passes through the accumulation layer,
// must therefore also be byte-identical strings.  The sweep tuning is forced
// down so even the small networks take the level-parallel path.
//
// Also proves the pool survives faults mid-sweep: a kPoolTask fault injected
// into a parallel compute() surfaces as FaultInjectedError after the sweep
// drains, and the same engine+pool then produce bit-identical results once
// the injector is disarmed — no poisoned workers, no stale partial state.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "gen/des.hpp"
#include "gen/random_network.hpp"
#include "netlist/stdcells.hpp"
#include "sta/hummingbird.hpp"
#include "test_util.hpp"
#include "util/faultinject.hpp"
#include "util/thread_pool.hpp"

namespace hb {
namespace {

TEST(ParallelSweepTest, ByteIdenticalAcrossThreadCountsAndKernels) {
  KernelConfigGuard guard;
  for (Workload& w : all_generator_networks()) {
    SCOPED_TRACE(w.name);

    // Baseline: serial forced-scalar analysis at default tuning.
    set_kernel_mode(KernelMode::kForceScalar);
    set_sweep_tuning(SweepTuning{});
    Hummingbird baseline(w.design, w.clocks);
    baseline.analyze();
    const std::vector<std::uint8_t> want = pass_bytes(baseline.engine());
    const std::string want_report = baseline.report(8);
    ASSERT_FALSE(want.empty());

    // Force the level-parallel path through every cluster and chunk even
    // tiny levels: results must not move by a single byte.
    set_sweep_tuning(SweepTuning{1, 4});
    for (const KernelMode mode : {KernelMode::kForceScalar, KernelMode::kAuto}) {
      for (const int threads : {1, 2, 8}) {
        SCOPED_TRACE(std::string(mode == KernelMode::kAuto ? "auto" : "scalar") +
                     "/" + std::to_string(threads) + "t");
        set_kernel_mode(mode);
        std::unique_ptr<ThreadPool> pool;
        HummingbirdOptions opt;
        if (threads > 1) {
          pool = std::make_unique<ThreadPool>(threads);
          opt.alg1.pool = pool.get();
        }
        Hummingbird analyser(w.design, w.clocks, opt);
        analyser.analyze();
        const std::vector<std::uint8_t> got = pass_bytes(analyser.engine());
        ASSERT_EQ(got.size(), want.size());
        EXPECT_EQ(std::memcmp(got.data(), want.data(), want.size()), 0)
            << "cached PassResult arrays diverged from serial scalar";
        EXPECT_EQ(analyser.report(8), want_report);
        EXPECT_EQ(analyser.check_hold_times(0, pool.get()).size(),
                  baseline.check_hold_times(0).size());
      }
    }
  }
}

// The incremental layer must stay byte-identical too: a parallel update()
// over a dirty offset reproduces the parallel (and serial) full compute().
TEST(ParallelSweepTest, ParallelUpdateMatchesParallelCompute) {
  KernelConfigGuard guard;
  set_kernel_mode(KernelMode::kAuto);
  set_sweep_tuning(SweepTuning{1, 4});

  auto lib = make_standard_library();
  RandomNetworkSpec spec;
  spec.seed = 11;
  spec.num_clocks = 2;
  spec.banks = 4;
  spec.bank_width = 5;
  spec.gates_per_stage = 40;
  RandomNetwork net = make_random_network(lib, spec);

  ThreadPool pool(8);
  HummingbirdOptions opt;
  opt.alg1.pool = &pool;
  Hummingbird analyser(net.design, net.clocks, opt);
  analyser.analyze();

  SlackEngine& engine = analyser.engine_mut();
  SyncModel& sync = analyser.sync_model_mut();
  for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
    SyncInstance& si = sync.at_mut(SyncId(i));
    if (si.transparent && !si.is_virtual && si.max_increase() >= 2) {
      si.shift(2);
      break;
    }
  }
  engine.invalidate_offsets(sync.drain_changed_offsets());
  engine.update(&pool);
  const std::vector<std::uint8_t> incremental = pass_bytes(engine);

  engine.invalidate_all();
  engine.compute(&pool);
  EXPECT_EQ(pass_bytes(engine), incremental);
  engine.invalidate_all();
  engine.compute();  // serial closes the triangle
  EXPECT_EQ(pass_bytes(engine), incremental);
}

// A fault injected into a pool task mid-sweep must surface as an error after
// the whole sweep drains, and must not poison the pool or the engine: the
// next compute() on the same objects is bit-identical to a fresh serial run.
TEST(ParallelSweepTest, PoolTaskFaultDrainsWithoutPoisoning) {
  KernelConfigGuard guard;
  set_kernel_mode(KernelMode::kAuto);
  set_sweep_tuning(SweepTuning{1, 4});

  auto lib = make_standard_library();
  const Design des = make_des(lib);
  const ClockSet clocks = make_single_clock(ns(6), ps(2400));

  ThreadPool pool(4);
  Hummingbird analyser(des, clocks);
  SlackEngine& engine = analyser.engine_mut();
  {
    FaultInjector::Config cfg;
    cfg.seed = 42;
    cfg.probability[static_cast<int>(FaultSite::kPoolTask)] = 1.0;
    FaultInjector::Scope scope(cfg);
    EXPECT_THROW(engine.compute(&pool), FaultInjectedError);
  }
  // Injector disarmed: the same engine and pool recover completely.
  engine.invalidate_all();
  engine.compute(&pool);

  Hummingbird fresh(des, clocks);
  fresh.analyze();
  EXPECT_EQ(pass_bytes(engine), pass_bytes(fresh.engine()));
  EXPECT_EQ(timing_summary(engine), timing_summary(fresh.engine()));
}

}  // namespace
}  // namespace hb
