// Differential and fuzz tests for the zero-copy read path: the mmap
// SnapshotView and the binary protocol v2.
//
// Contracts under test:
//   1. View/copy byte-identity: evaluate_snapshot_read over a SnapshotView
//      of a serialised image answers byte-for-byte like the same evaluator
//      over the decoded AnalysisSnapshot, on every generator network, with
//      and without a multi-corner capture, across every snapshot-served
//      verb including the error replies.
//   2. Protocol identity: every proto-2 typed reply, rendered back to text
//      by proto2_render_payload, reproduces the proto-1 reply byte for
//      byte; decode errors carry the same structured messages as the text
//      parser for the same out-of-range values.
//   3. Version skew: a crafted version-1 image is refused by the view
//      (kSnapshotVersionSkew) but still decodes on the copy path, and the
//      store's load_newest_source falls back accordingly with identical
//      replies.
//   4. Robustness: arbitrary and mutated bytes through SnapshotView::attach
//      and through the frame decoder/renderer never crash (fixed seeds;
//      re-run under ASan/UBSan in the CI fuzz job), and a view never
//      accepts an image parse_snapshot rejects.
//   5. Zero-allocation steady state: cached text reads and typed binary
//      replies perform no heap allocation once warm (global operator new
//      hook, this binary only).
//   6. Replica mode: read-only semantics, re-mapping via `snapshot load`,
//      and the per-section `snapshot stat` report.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "gen/random_network.hpp"
#include "netlist/stdcells.hpp"
#include "scenario/corner_analysis.hpp"
#include "scenario/corner_set.hpp"
#include "service/proto2.hpp"
#include "service/protocol.hpp"
#include "service/session.hpp"
#include "service/snapshot_codec.hpp"
#include "service/snapshot_read.hpp"
#include "service/snapshot_source.hpp"
#include "service/snapshot_store.hpp"
#include "service/snapshot_view.hpp"
#include "sta/hummingbird.hpp"
#include "test_util.hpp"
#include "util/error.hpp"

// Allocation counting hook: every operator new in this process bumps the
// counter.  Defined here so only this test binary pays for it.
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t sz) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz) { return ::operator new(sz); }
void* operator new(std::size_t sz, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (sz + static_cast<std::size_t>(al) - 1) &
                                       ~(static_cast<std::size_t>(al) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz, std::align_val_t al) {
  return ::operator new(sz, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace hb {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl = (fs::temp_directory_path() / "hbproto.XXXXXX").string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char* p = ::mkdtemp(buf.data());
    EXPECT_NE(p, nullptr);
    path = p != nullptr ? p : tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

CornerSet test_corners() {
  return parse_corner_spec_or_throw(
      "corner typical 1000\n"
      "corner slow 1250\nwire slow 1300\n"
      "corner fast 800\nwire fast 780\n");
}

/// Analyse one workload into a fully captured snapshot — hold pairs,
/// Algorithm 2 constraints and (optionally) a 3-corner capture — exactly
/// as a session publishes them.
std::shared_ptr<AnalysisSnapshot> captured_snapshot(Workload& w,
                                                    bool with_corners) {
  Hummingbird hum(w.design, w.clocks);
  const Algorithm1Result res = hum.analyze();
  auto snap = take_snapshot(hum.engine(), res, 1, 32,
                            build_name_index(hum.graph()));
  capture_hold_into(*snap, hum.engine());
  capture_constraints_into(*snap, hum);
  if (with_corners) {
    CornerAnalysis ca(hum.engine(), test_corners());
    ca.compute(nullptr);
    capture_corners_into(*snap, ca, 32, true);
  }
  return snap;
}

/// Every snapshot-served verb, ok and error paths both, against this
/// snapshot's real name tables.
std::vector<std::string> read_queries(const AnalysisSnapshot& snap,
                                      bool with_corners) {
  std::vector<std::string> qs = {
      "summary",        "worst_paths 5", "worst_paths 0", "worst_paths 1000",
      "histogram 1",    "histogram 4",   "histogram 64",  "check_hold",
      "check_hold 5ns", "check_hold -1ns", "gen_constraints",
      "slack no_such_node", "constraints no_such_inst", "corner list",
  };
  qs.push_back("slack " + snap.names->node_names.front());
  qs.push_back("slack " + snap.names->node_names.back());
  if (!snap.names->inst_pins.empty()) {
    qs.push_back("constraints " + snap.names->inst_pins.begin()->first);
  }
  if (with_corners) {
    qs.push_back("corner typical slack " + snap.names->node_names.front());
    qs.push_back("corner slow worst_paths 3");
    qs.push_back("corner 1 histogram 4");
    qs.push_back("corner fast summary");
    qs.push_back("corner slow check_hold");
    qs.push_back("corner 2 check_hold 5ns");
    qs.push_back("corner nope summary");
    qs.push_back("corner 9 summary");
  } else {
    qs.push_back("corner typical summary");
  }
  return qs;
}

std::string eval_text(const ParsedQuery& q, const SnapshotSource& src) {
  BudgetTimer timer{AnalysisBudget{}};
  return to_wire(evaluate_snapshot_read(q, src, timer));
}

/// Round-trip one parsed query through the typed binary protocol against
/// `src`: encode, decode, evaluate, render.  Returns false when the verb
/// has no typed opcode.
bool eval_proto2(const ParsedQuery& q, const SnapshotSource& src,
                 std::string& rendered) {
  std::string frame;
  if (!proto2_encode_request(q, frame)) return false;
  EXPECT_GE(frame.size(), 4u);
  const Proto2Request req =
      proto2_decode_request(std::string_view(frame).substr(4));
  EXPECT_TRUE(req.ok) << req.error;
  std::string reply;
  BudgetTimer timer{AnalysisBudget{}};
  proto2_evaluate(req, src, timer, reply);
  rendered.clear();
  EXPECT_TRUE(proto2_render_payload(std::string_view(reply).substr(4),
                                    rendered));
  return true;
}

std::uint64_t splitmix(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// -- View vs copy byte-identity ---------------------------------------------

TEST(ViewDiffTest, ViewMatchesCopyOnEveryGeneratorNetwork) {
  for (Workload& w : all_generator_networks()) {
    for (const bool corners : {false, true}) {
      SCOPED_TRACE(w.name + (corners ? "+corners" : ""));
      const auto snap = captured_snapshot(w, corners);
      const std::string image = serialize_snapshot(*snap);
      const SnapshotView::MapResult mr = SnapshotView::attach(image);
      ASSERT_TRUE(mr.ok()) << mr.error;
      EXPECT_FALSE(mr.view->mapped());  // borrowed bytes, not a mapping
      EXPECT_EQ(mr.view->image_bytes(), image.size());
      const SnapshotCopySource copy(*snap);
      for (const std::string& line : read_queries(*snap, corners)) {
        SCOPED_TRACE(line);
        const ParsedQuery q = parse_query(line);
        ASSERT_TRUE(q.ok) << to_wire(q.error);
        EXPECT_EQ(eval_text(q, *mr.view), eval_text(q, copy));
      }
    }
  }
}

TEST(ViewDiffTest, ViewHonoursReadDeadlines) {
  Workload w = std::move(all_generator_networks()[0]);
  const auto snap = captured_snapshot(w, false);
  const std::string image = serialize_snapshot(*snap);
  const SnapshotView::MapResult mr = SnapshotView::attach(image);
  ASSERT_TRUE(mr.ok()) << mr.error;
  const ParsedQuery q = parse_query("worst_paths 1000");
  ASSERT_TRUE(q.ok);
  AnalysisBudget spent;
  spent.wall_seconds = 1e-12;  // exhausted before the first line
  BudgetTimer timer{spent};
  while (!timer.exhausted()) timer.count_cycle();
  const QueryResult r = evaluate_snapshot_read(q, *mr.view, timer);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(to_wire(r).find("read deadline exceeded"), std::string::npos);
}

// -- Protocol identity ------------------------------------------------------

TEST(Proto2DiffTest, TypedRepliesRenderIdenticalToProto1) {
  for (Workload& w : all_generator_networks()) {
    for (const bool corners : {false, true}) {
      SCOPED_TRACE(w.name + (corners ? "+corners" : ""));
      const auto snap = captured_snapshot(w, corners);
      const std::string image = serialize_snapshot(*snap);
      const SnapshotView::MapResult mr = SnapshotView::attach(image);
      ASSERT_TRUE(mr.ok()) << mr.error;
      const SnapshotCopySource copy(*snap);
      std::size_t typed = 0;
      for (const std::string& line : read_queries(*snap, corners)) {
        SCOPED_TRACE(line);
        const ParsedQuery q = parse_query(line);
        ASSERT_TRUE(q.ok);
        std::string rendered;
        if (!eval_proto2(q, copy, rendered)) continue;
        ++typed;
        EXPECT_EQ(rendered, eval_text(q, copy));
        // And the view-backed typed reply matches the copy-backed one.
        std::string view_rendered;
        ASSERT_TRUE(eval_proto2(q, *mr.view, view_rendered));
        EXPECT_EQ(view_rendered, rendered);
      }
      EXPECT_GT(typed, 10u) << "typed coverage collapsed";
    }
  }
}

TEST(Proto2DiffTest, DecodeRangeErrorsMatchTextParser) {
  // A typed frame carrying an out-of-range value must produce the same
  // structured error the text parser emits for the same token.
  const struct {
    Proto2Op op;
    std::uint32_t value;
    const char* text;
  } cases[] = {
      {Proto2Op::kHistogram, 0, "histogram 0"},
      {Proto2Op::kHistogram, 1001, "histogram 1001"},
      {Proto2Op::kWorstPaths, 100001, "worst_paths 100001"},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.text);
    std::string payload;
    put_u8(payload, static_cast<std::uint8_t>(c.op));
    put_u32(payload, c.value);
    const Proto2Request req = proto2_decode_request(payload);
    ASSERT_FALSE(req.ok);
    std::string frame;
    proto2_error_frame(req.code, req.error, frame);
    std::string rendered;
    ASSERT_TRUE(
        proto2_render_payload(std::string_view(frame).substr(4), rendered));
    const ParsedQuery q = parse_query(c.text);
    ASSERT_FALSE(q.ok);
    EXPECT_EQ(rendered, to_wire(q.error));
  }
}

TEST(Proto2DiffTest, PingAndTextFramesRoundTrip) {
  std::string frame;
  proto2_ping_frame(frame);
  std::string rendered;
  ASSERT_TRUE(
      proto2_render_payload(std::string_view(frame).substr(4), rendered));
  EXPECT_EQ(rendered, "ok pong\n");

  frame.clear();
  proto2_text_frame("ok bye\n", frame);
  rendered.clear();
  ASSERT_TRUE(
      proto2_render_payload(std::string_view(frame).substr(4), rendered));
  EXPECT_EQ(rendered, "ok bye\n");
}

// -- Version skew / copy fallback -------------------------------------------

/// Craft a version-1 image: the seven pre-corner sections of a cornerless
/// version-2 image under a version-1 header.  parse_snapshot accepts it
/// (corners are optional below version 2); the view must refuse it.
std::string make_v1_image(const std::string& v2_image) {
  const SnapshotParse parsed = parse_snapshot(v2_image);
  EXPECT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.sections.size(), kNumSnapshotSections);
  std::string v1 = v2_image.substr(0, 4);  // magic
  put_u32(v1, 1);                          // version
  put_u32(v1, kNumSnapshotSections - 1);   // section count, corners dropped
  for (const SnapshotSectionInfo& s : parsed.sections) {
    if (s.kind == static_cast<std::uint32_t>(SnapshotSection::kCorners)) {
      continue;
    }
    v1.append(v2_image, s.header_offset,
              (s.payload_offset - s.header_offset) + s.payload_size);
  }
  return v1;
}

TEST(ViewDiffTest, Version1ImageFallsBackToDecodedCopy) {
  Workload w = std::move(all_generator_networks()[0]);
  const auto snap = captured_snapshot(w, false);
  const std::string v1 = make_v1_image(serialize_snapshot(*snap));

  // The parser accepts the version-1 image; the view refuses it with the
  // dedicated skew code.
  const SnapshotParse parsed = parse_snapshot(v1);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const SnapshotView::MapResult mr = SnapshotView::attach(v1);
  ASSERT_FALSE(mr.ok());
  EXPECT_EQ(mr.code, DiagCode::kSnapshotVersionSkew);
  EXPECT_EQ(mr.version, 1u);

  // A store holding only the version-1 file still serves it — through the
  // decoded copy path — with replies identical to the in-memory snapshot.
  TempDir dir;
  {
    std::ofstream f(dir.path + "/" + snap->design_name + ".1.hbss",
                    std::ios::binary);
    f.write(v1.data(), static_cast<std::streamsize>(v1.size()));
  }
  SnapshotStore store({dir.path, 4});
  SnapshotStore::SourceResult res = store.load_newest_source();
  ASSERT_TRUE(res.ok()) << res.error;
  EXPECT_FALSE(res.mapped);
  EXPECT_EQ(res.rejected, 0u);  // skew is a fallback, not a quarantine
  const SnapshotCopySource copy(*snap);
  for (const std::string& line : read_queries(*snap, false)) {
    SCOPED_TRACE(line);
    const ParsedQuery q = parse_query(line);
    ASSERT_TRUE(q.ok);
    EXPECT_EQ(eval_text(q, *res.source), eval_text(q, copy));
  }
}

TEST(ViewDiffTest, StorePrefersMappedViewOnCurrentFormat) {
  Workload w = std::move(all_generator_networks()[0]);
  const auto snap = captured_snapshot(w, true);
  TempDir dir;
  SnapshotStore store({dir.path, 4});
  ASSERT_TRUE(store.save(*snap).ok);
  SnapshotStore::SourceResult res = store.load_newest_source();
  ASSERT_TRUE(res.ok()) << res.error;
  EXPECT_TRUE(res.mapped);
  EXPECT_EQ(res.sections.size(), kNumSnapshotSections);
  EXPECT_GT(res.image_bytes, 0u);
  const SnapshotCopySource copy(*snap);
  for (const std::string& line : read_queries(*snap, true)) {
    SCOPED_TRACE(line);
    const ParsedQuery q = parse_query(line);
    ASSERT_TRUE(q.ok);
    EXPECT_EQ(eval_text(q, *res.source), eval_text(q, copy));
  }
}

// -- Fuzz -------------------------------------------------------------------

TEST(ViewFuzzTest, AttachSafeOnArbitraryBytes) {
  std::uint64_t rng = 0xABCDEF12;
  for (int round = 0; round < 300; ++round) {
    std::string blob(splitmix(rng) % 2048, '\0');
    for (char& c : blob) c = static_cast<char>(splitmix(rng));
    // Half the rounds get a valid magic/version prefix so the fuzz reaches
    // the section scanner, not just the header check.
    if (round % 2 == 0 && blob.size() >= 12) {
      std::string head;
      put_u32(head, kSnapshotMagic);
      put_u32(head, kSnapshotFormatVersion);
      std::memcpy(blob.data(), head.data(), head.size());
    }
    const SnapshotView::MapResult mr = SnapshotView::attach(blob);
    if (mr.ok()) {
      // A view never accepts what the parser rejects.
      EXPECT_TRUE(parse_snapshot(blob).ok());
    } else {
      EXPECT_FALSE(mr.error.empty());
    }
  }
}

TEST(ViewFuzzTest, AttachSafeOnMutatedValidImages) {
  Workload w = std::move(all_generator_networks()[0]);
  const auto snap = captured_snapshot(w, true);
  const std::string image = serialize_snapshot(*snap);
  const ParsedQuery summary = parse_query("summary");
  const ParsedQuery paths = parse_query("worst_paths 5");
  std::uint64_t rng = 0x5EED0001;
  for (int round = 0; round < 400; ++round) {
    std::string mutated = image;
    const int kind = static_cast<int>(splitmix(rng) % 3);
    if (kind == 0) {
      mutated.resize(splitmix(rng) % (image.size() + 1));  // truncate
    } else {
      const int flips = 1 + static_cast<int>(splitmix(rng) % 8);
      for (int f = 0; f < flips; ++f) {
        const std::size_t at = splitmix(rng) % mutated.size();
        mutated[at] = static_cast<char>(mutated[at] ^
                                        (1u << (splitmix(rng) % 8)));
      }
    }
    const SnapshotView::MapResult mr = SnapshotView::attach(mutated);
    if (!mr.ok()) continue;
    // Checksums make surviving mutations astronomically unlikely, but any
    // accepted view must also satisfy the parser and answer reads safely.
    EXPECT_TRUE(parse_snapshot(mutated).ok());
    eval_text(summary, *mr.view);
    eval_text(paths, *mr.view);
  }
}

TEST(Proto2FuzzTest, DecoderSafeOnArbitraryFrames) {
  Workload w = std::move(all_generator_networks()[0]);
  const auto snap = captured_snapshot(w, true);
  const SnapshotCopySource copy(*snap);
  std::uint64_t rng = 0xF00DF00D;
  for (int round = 0; round < 2000; ++round) {
    std::string payload(splitmix(rng) % 96, '\0');
    for (char& c : payload) c = static_cast<char>(splitmix(rng));
    const Proto2Request req = proto2_decode_request(payload);
    if (!req.ok) {
      EXPECT_FALSE(req.error.empty());
      continue;
    }
    // Whatever decoded must evaluate into a frame the renderer accepts.
    std::string reply;
    BudgetTimer timer{AnalysisBudget{}};
    proto2_evaluate(req, copy, timer, reply);
    ASSERT_GE(reply.size(), 4u);
    std::string rendered;
    EXPECT_TRUE(proto2_render_payload(std::string_view(reply).substr(4),
                                      rendered));
  }
}

TEST(Proto2FuzzTest, DecoderSafeOnMutatedTypedFrames) {
  Workload w = std::move(all_generator_networks()[0]);
  const auto snap = captured_snapshot(w, true);
  const SnapshotCopySource copy(*snap);
  std::vector<std::string> seeds;
  for (const std::string& line : read_queries(*snap, true)) {
    const ParsedQuery q = parse_query(line);
    if (!q.ok) continue;
    std::string frame;
    if (proto2_encode_request(q, frame)) {
      seeds.push_back(std::string(std::string_view(frame).substr(4)));
    }
  }
  ASSERT_FALSE(seeds.empty());
  std::uint64_t rng = 0xC0FFEE11;
  for (int round = 0; round < 2000; ++round) {
    std::string payload = seeds[splitmix(rng) % seeds.size()];
    const int flips = 1 + static_cast<int>(splitmix(rng) % 4);
    for (int f = 0; f < flips && !payload.empty(); ++f) {
      const std::size_t at = splitmix(rng) % payload.size();
      payload[at] =
          static_cast<char>(payload[at] ^ (1u << (splitmix(rng) % 8)));
    }
    if (splitmix(rng) % 4 == 0) {
      payload.resize(splitmix(rng) % (payload.size() + 1));
    }
    const Proto2Request req = proto2_decode_request(payload);
    if (!req.ok) continue;
    std::string reply;
    BudgetTimer timer{AnalysisBudget{}};
    proto2_evaluate(req, copy, timer, reply);
    ASSERT_GE(reply.size(), 4u);
    std::string rendered;
    EXPECT_TRUE(proto2_render_payload(std::string_view(reply).substr(4),
                                      rendered));
  }
}

TEST(Proto2FuzzTest, RendererSafeOnArbitraryPayloads) {
  std::uint64_t rng = 0xDEAD10CC;
  for (int round = 0; round < 2000; ++round) {
    std::string payload(splitmix(rng) % 256, '\0');
    for (char& c : payload) c = static_cast<char>(splitmix(rng));
    std::string rendered;
    proto2_render_payload(payload, rendered);  // must not crash
  }
}

// -- Connection-level behaviour ---------------------------------------------

std::shared_ptr<Session> make_session(SessionOptions opt = {}) {
  RandomNetworkSpec spec;
  spec.seed = 7;
  spec.num_clocks = 2;
  spec.banks = 4;
  spec.bank_width = 4;
  spec.gates_per_stage = 40;
  RandomNetwork net = make_random_network(make_standard_library(), spec);
  return std::make_shared<Session>(std::move(net.design),
                                   std::move(net.clocks), HummingbirdOptions{},
                                   std::move(opt));
}

TEST(Proto2Test, NegotiationSwitchesTheStreamToBinaryFrames) {
  ServiceHost host;
  host.adopt(make_session());
  ProtocolHandler text(host);  // reference replies, line protocol
  const std::vector<std::string> lines = {"summary", "worst_paths 3",
                                          "histogram 4", "ping",
                                          "slack no_such_node", "stats"};

  std::string input = "# comment\nproto 2\n";
  for (const std::string& line : lines) {
    const ParsedQuery q = parse_query(line);
    ASSERT_TRUE(q.ok);
    if (!proto2_encode_request(q, input)) proto2_encode_text(line, input);
  }
  proto2_encode_text("quit", input);

  std::istringstream in(input);
  std::ostringstream out;
  const int errors = serve_stream(host, in, out);
  EXPECT_EQ(errors, 1);  // the unknown-node slack reply

  const std::string wire = out.str();
  ASSERT_EQ(wire.rfind("ok proto 2\n", 0), 0u) << wire.substr(0, 32);
  std::string_view frames(wire);
  frames.remove_prefix(std::strlen("ok proto 2\n"));
  std::vector<std::string> rendered;
  while (!frames.empty()) {
    ASSERT_GE(frames.size(), 4u);
    const std::uint32_t len = codec_read_le32(
        reinterpret_cast<const unsigned char*>(frames.data()));
    ASSERT_GE(frames.size(), 4u + len);
    std::string text_reply;
    ASSERT_TRUE(proto2_render_payload(frames.substr(4, len), text_reply));
    rendered.push_back(std::move(text_reply));
    frames.remove_prefix(4u + len);
  }
  ASSERT_EQ(rendered.size(), lines.size() + 1);  // + quit
  for (std::size_t i = 0; i < lines.size(); ++i) {
    SCOPED_TRACE(lines[i]);
    if (lines[i] == "stats") {
      // Metrics move between the two connections; shape only.
      EXPECT_EQ(rendered[i].rfind("ok stats ", 0), 0u);
      continue;
    }
    EXPECT_EQ(rendered[i], text.handle_line(lines[i]));
  }
  EXPECT_EQ(rendered.back(), "ok bye\n");
}

TEST(Proto2Test, RejectsUnsupportedVersions) {
  ServiceHost host;
  host.adopt(make_session());
  ProtocolHandler h(host);
  const std::string r1 = h.handle_line("proto 3");
  EXPECT_EQ(r1.rfind("err service-rejected", 0), 0u) << r1;
  EXPECT_NE(r1.find("'3'"), std::string::npos);
  EXPECT_FALSE(h.binary());
  EXPECT_EQ(h.handle_line("proto 1").rfind("err service-rejected", 0), 0u);
  EXPECT_FALSE(h.binary());
  EXPECT_EQ(h.handle_line("proto 2"), "ok proto 2\n");
  EXPECT_TRUE(h.binary());
}

TEST(Proto2Test, OversizedFrameAnsweredWithStructuredError) {
  ServiceHost host;
  host.adopt(make_session());
  std::string input = "proto 2\n";
  put_u32(input, kProto2MaxFrame + 1);  // header only; loop must not wait
  std::istringstream in(input);
  std::ostringstream out;
  EXPECT_GE(serve_stream(host, in, out), 1);
  const std::string wire = out.str();
  std::string_view frames(wire);
  frames.remove_prefix(std::strlen("ok proto 2\n"));
  ASSERT_GE(frames.size(), 4u);
  std::string rendered;
  ASSERT_TRUE(proto2_render_payload(frames.substr(4), rendered));
  EXPECT_EQ(rendered.rfind("err service-rejected", 0), 0u) << rendered;
  EXPECT_NE(rendered.find("exceeds"), std::string::npos);
}

TEST(Proto2Test, HandleFrameRejectsMalformedPayloads) {
  ServiceHost host;
  host.adopt(make_session());
  ProtocolHandler h(host);
  const std::string& reply = h.handle_frame(std::string_view());
  ASSERT_GE(reply.size(), 4u);
  std::string rendered;
  ASSERT_TRUE(proto2_render_payload(std::string_view(reply).substr(4),
                                    rendered));
  EXPECT_EQ(rendered.rfind("err parse-syntax", 0), 0u) << rendered;
  EXPECT_EQ(h.frame_errors(), 1u);
  // Unknown opcode.
  std::string bad;
  put_u8(bad, 0x7E);
  std::string rendered2;
  ASSERT_TRUE(proto2_render_payload(
      std::string_view(h.handle_frame(bad)).substr(4), rendered2));
  EXPECT_EQ(rendered2.rfind("err parse-unknown-keyword", 0), 0u) << rendered2;
  EXPECT_EQ(h.frame_errors(), 2u);
}

TEST(Proto2Test, ZeroAllocSteadyStateOnCachedAndTypedReads) {
  ServiceHost host;
  host.adopt(make_session());
  const std::shared_ptr<Session> session = host.session();
  // Short names stay within SSO so the copy-source lookups stay heap-free.
  const std::string node = session->snapshot()->names->node_names.front();
  ASSERT_LE(node.size(), 15u) << "pick a shorter node for the SSO guarantee";
  ProtocolHandler h(host);
  const std::vector<std::string> lines = {"summary", "worst_paths 3",
                                          "histogram 4", "slack " + node};
  // Text path: replies come from the query cache after the first round.
  for (int warm = 0; warm < 3; ++warm) {
    for (const std::string& line : lines) h.handle_line(line);
  }
  const std::uint64_t text_before = g_allocs.load(std::memory_order_relaxed);
  for (int round = 0; round < 64; ++round) {
    for (const std::string& line : lines) h.handle_line(line);
  }
  const std::uint64_t text_allocs =
      g_allocs.load(std::memory_order_relaxed) - text_before;
  EXPECT_EQ(text_allocs, 0u) << "cached text reads must not allocate";

  // Typed binary path: pre-encoded frames, replies written into the
  // connection arena.
  std::vector<std::string> payloads;
  for (const std::string& line : lines) {
    const ParsedQuery q = parse_query(line);
    ASSERT_TRUE(q.ok);
    std::string frame;
    ASSERT_TRUE(proto2_encode_request(q, frame));
    payloads.push_back(std::string(std::string_view(frame).substr(4)));
  }
  ASSERT_EQ(h.handle_line("proto 2"), "ok proto 2\n");
  for (int warm = 0; warm < 3; ++warm) {
    for (const std::string& p : payloads) h.handle_frame(p);
  }
  const std::uint64_t bin_before = g_allocs.load(std::memory_order_relaxed);
  for (int round = 0; round < 64; ++round) {
    for (const std::string& p : payloads) h.handle_frame(p);
  }
  const std::uint64_t bin_allocs =
      g_allocs.load(std::memory_order_relaxed) - bin_before;
  EXPECT_EQ(bin_allocs, 0u) << "typed binary replies must not allocate";
}

// -- Replica mode -----------------------------------------------------------

TEST(Proto2Test, ReplicaRequiresSnapshotDir) {
  ServiceConfig cfg;
  cfg.replica = true;
  EXPECT_THROW(ServiceHost{cfg}, Error);
}

TEST(Proto2Test, ReplicaHostServesTheMappedViewReadOnly) {
  TempDir dir;
  ServiceConfig cfg;
  cfg.snapshot_dir = dir.path;
  std::vector<std::string> queries = {"summary", "worst_paths 3",
                                      "histogram 4", "check_hold",
                                      "gen_constraints"};
  std::vector<std::string> before;
  {
    ServiceHost writer(cfg);
    auto session = make_session();
    queries.push_back("slack " +
                      session->snapshot()->names->node_names.front());
    writer.adopt(std::move(session));  // persists snapshot 1
    ProtocolHandler h(writer);
    for (const std::string& q : queries) before.push_back(h.handle_line(q));
  }

  ServiceConfig rcfg;
  rcfg.snapshot_dir = dir.path;
  rcfg.replica = true;
  ServiceHost replica(rcfg);
  ASSERT_NE(replica.warm_source(), nullptr);
  EXPECT_TRUE(replica.warm_mapped());
  ProtocolHandler h(replica);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    SCOPED_TRACE(queries[i]);
    EXPECT_EQ(h.handle_line(queries[i]), before[i]);
  }
  // Writes and loads answer structured rejections.
  const std::string write = h.handle_line("set_delay x 10ps");
  EXPECT_EQ(write.rfind("err service-rejected", 0), 0u) << write;
  EXPECT_NE(write.find("read-only"), std::string::npos);
  const std::string load = h.handle_line("load a.net a.spec");
  EXPECT_EQ(load.rfind("err service-rejected", 0), 0u) << load;
  EXPECT_NE(load.find("replica"), std::string::npos);
  // `snapshot load` re-maps in place.
  const std::string remap = h.handle_line("snapshot load");
  EXPECT_EQ(remap.rfind("ok snapshot load", 0), 0u) << remap;
  EXPECT_TRUE(replica.warm_mapped());
  // The binary protocol works against the replica too.
  ASSERT_EQ(h.handle_line("proto 2"), "ok proto 2\n");
  const ParsedQuery q = parse_query("summary");
  std::string frame;
  ASSERT_TRUE(proto2_encode_request(q, frame));
  std::string rendered;
  ASSERT_TRUE(proto2_render_payload(
      std::string_view(h.handle_frame(std::string_view(frame).substr(4)))
          .substr(4),
      rendered));
  EXPECT_EQ(rendered, before[0]);
}

TEST(Proto2Test, SnapshotStatReportsSectionsAndMode) {
  TempDir dir;
  ServiceConfig cfg;
  cfg.snapshot_dir = dir.path;
  {
    ServiceHost writer(cfg);
    writer.adopt(make_session());
  }
  ServiceHost host(cfg);
  ASSERT_NE(host.warm_source(), nullptr);
  ProtocolHandler h(host);
  const std::string stat = h.handle_line("snapshot stat");
  EXPECT_NE(stat.find("store warm_mode mapped"), std::string::npos) << stat;
  EXPECT_NE(stat.find("store image_bytes "), std::string::npos);
  for (std::uint32_t k = 0; k < kNumSnapshotSections; ++k) {
    const std::string line =
        std::string("store section_") +
        snapshot_section_name(static_cast<SnapshotSection>(k)) + " ";
    EXPECT_NE(stat.find(line), std::string::npos) << "missing " << line;
  }
  // The header count matches the emitted line count.
  std::istringstream is(stat);
  std::string first;
  std::getline(is, first);
  std::size_t n = 0;
  for (std::string l; std::getline(is, l);) ++n;
  EXPECT_EQ(first, "ok snapshot stat " + std::to_string(n));
}

}  // namespace
}  // namespace hb
