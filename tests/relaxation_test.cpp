// The forward-relaxation baseline (Wallace/Sequin, Szymanski style) against
// Hummingbird.  On edge-triggered designs the two semantics coincide, so
// verdicts must match exactly; on transparent-latch designs relaxation
// evaluates the "run the clocks" behaviour and must agree on clear passes
// and clear failures.
#include <gtest/gtest.h>

#include "baseline/relaxation.hpp"
#include "gen/pipeline.hpp"
#include "netlist/builder.hpp"
#include "netlist/stdcells.hpp"
#include "sta/hummingbird.hpp"

namespace hb {
namespace {

class RelaxationTest : public ::testing::Test {
 protected:
  std::shared_ptr<const Library> lib_ = make_standard_library();
};

TEST_F(RelaxationTest, MatchesHummingbirdOnFlipFlopDesigns) {
  for (int depth : {4, 20, 36, 44, 60}) {
    TopBuilder b("ff" + std::to_string(depth), lib_);
    const NetId clk = b.port_in("clk", true);
    NetId n = b.latch("DFFT", b.port_in("d"), clk, "ff1");
    for (int i = 0; i < depth; ++i) n = b.gate("INVX1", {n});
    b.port_out_net("q", b.latch("DFFT", n, clk, "ff2"));
    const Design design = b.finish();
    ClockSet clocks;
    clocks.add_simple_clock("clk", ns(2), 0, ns(1));

    Hummingbird analyser(design, clocks);
    const bool hb_ok = analyser.analyze().works_as_intended;
    const RelaxationResult relax = relaxation_analysis(analyser.engine());
    EXPECT_TRUE(relax.converged);
    EXPECT_EQ(relax.works, hb_ok) << "depth " << depth;
  }
}

TEST_F(RelaxationTest, FlowsThroughTransparentLatches) {
  // Unbalanced two-phase latch pipeline that only works with cycle
  // stealing: relaxation must also accept it (data genuinely flows through
  // the open latch), and must reject the hopeless version.
  for (const bool should_work : {true, false}) {
    PipelineSpec spec;
    spec.stage_depths = should_work ? std::vector<int>{120, 20}
                                    : std::vector<int>{220, 160};
    spec.width = 1;
    spec.latch_cell = "TLATCH";
    spec.seed = 3;
    const Design design = make_pipeline(lib_, spec);
    const ClockSet clocks = make_two_phase_clocks(ns(10));

    Hummingbird analyser(design, clocks);
    const bool hb_ok = analyser.analyze().works_as_intended;
    const RelaxationResult relax = relaxation_analysis(analyser.engine());
    EXPECT_EQ(hb_ok, should_work);
    EXPECT_EQ(relax.works, should_work) << "stage depths case";
  }
}

TEST_F(RelaxationTest, ViolationsNameTheOffendingInput) {
  TopBuilder b("v", lib_);
  const NetId clk = b.port_in("clk", true);
  NetId n = b.latch("DFFT", b.port_in("d"), clk, "ff1");
  for (int i = 0; i < 64; ++i) n = b.gate("INVX1", {n});
  b.port_out_net("q", b.latch("DFFT", n, clk, "ff2"));
  const Design design = b.finish();
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(2), 0, ns(1));
  Hummingbird analyser(design, clocks);
  analyser.analyze();

  const RelaxationResult relax = relaxation_analysis(analyser.engine());
  ASSERT_FALSE(relax.violations.empty());
  const Module& top = design.top();
  const Instance& ff2 = top.inst(top.find_inst("ff2"));
  const Cell& cell = lib_->cell(ff2.cell);
  EXPECT_EQ(relax.violations[0].node,
            analyser.graph().pin_node(top.find_inst("ff2"), cell.sync().data_in));
  EXPECT_GT(relax.violations[0].arrival, relax.violations[0].deadline);
}

TEST_F(RelaxationTest, SettlingCountsMatchPerEdgeAttribution) {
  // A node fed by launches on two different edges carries two transition
  // classes; single-phase cones carry one.
  TopBuilder b("mix", lib_);
  const NetId phi1 = b.port_in("phi1", true);
  const NetId phi2 = b.port_in("phi2", true);
  const NetId qa = b.latch("DFFT", b.port_in("da"), phi1, "ffa");
  const NetId qb = b.latch("DFFT", b.port_in("db"), phi2, "ffb");
  const NetId mixed = b.gate("NAND2X1", {qa, qb}, "mix");
  const NetId lone = b.gate("INVX1", {qa}, "lone");
  b.port_out_net("q0", b.latch("DFFT", mixed, phi1, "cap0"));
  b.port_out_net("q1", b.latch("DFFT", lone, phi1, "cap1"));
  const Design design = b.finish();
  const ClockSet clocks = make_two_phase_clocks(ns(10));
  Hummingbird analyser(design, clocks);
  analyser.analyze();

  const RelaxationResult relax = relaxation_analysis(analyser.engine());
  EXPECT_TRUE(relax.works);
  const TimingGraph& graph = analyser.graph();
  const Module& top = design.top();
  EXPECT_EQ(relax.settling_counts[graph.pin_node(top.find_inst("mix"), 2).index()], 2);
  EXPECT_EQ(relax.settling_counts[graph.pin_node(top.find_inst("lone"), 1).index()], 1);
}

TEST_F(RelaxationTest, TooSlowLatchLoopFailsToConverge) {
  // A two-latch transparent ring slower than the period keeps gaining time
  // every round: relaxation must report non-convergence (and thus failure),
  // matching Hummingbird's verdict.
  TopBuilder b("ring", lib_);
  const NetId phi1 = b.port_in("phi1", true);
  const NetId phi2 = b.port_in("phi2", true);
  const NetId back = b.net("back");
  const NetId inject = b.gate("MUX2X1", {b.port_in("d"), back, b.port_in("sel")});
  NetId n = b.latch("TLATCH", inject, phi1, "l1");
  for (int i = 0; i < 120; ++i) n = b.gate("INVX1", {n});
  n = b.latch("TLATCH", n, phi2, "l2");
  for (int i = 0; i < 119; ++i) n = b.gate("INVX1", {n});
  {
    Module& m = b.module();
    const InstId g = m.add_cell_inst("loop_inv", lib_->require("INVX1"), 2);
    m.connect(g, 0, n);
    m.connect(g, 1, back);
  }
  b.port_out_net("q", n);
  const Design design = b.finish();
  const ClockSet clocks = make_two_phase_clocks(ns(10));

  Hummingbird analyser(design, clocks);
  EXPECT_FALSE(analyser.analyze().works_as_intended);
  const RelaxationResult relax = relaxation_analysis(analyser.engine());
  EXPECT_FALSE(relax.works);
}

}  // namespace
}  // namespace hb
