// Slow-path enumeration, formatting and database flagging.
#include <gtest/gtest.h>

#include "gen/pipeline.hpp"
#include "netlist/builder.hpp"
#include "netlist/stdcells.hpp"
#include "sta/hummingbird.hpp"
#include "util/thread_pool.hpp"

namespace hb {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  std::shared_ptr<const Library> lib_ = make_standard_library();

  /// Two parallel flip-flop paths, one long (violating), one short.
  Design make_two_path_design(int long_depth, int short_depth) {
    TopBuilder b("two", lib_);
    const NetId clk = b.port_in("clk", true);
    for (int lane = 0; lane < 2; ++lane) {
      const int depth = lane == 0 ? long_depth : short_depth;
      NetId n = b.latch("DFFT", b.port_in("d" + std::to_string(lane)), clk,
                        "src" + std::to_string(lane));
      for (int i = 0; i < depth; ++i) n = b.gate("INVX1", {n});
      b.port_out_net("q" + std::to_string(lane),
                     b.latch("DFFT", n, clk, "dst" + std::to_string(lane)));
    }
    return b.finish();
  }
};

TEST_F(ReportTest, OnlyViolatingPathsReported) {
  const Design design = make_two_path_design(64, 4);
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(2), 0, ns(1));
  Hummingbird analyser(design, clocks);
  EXPECT_FALSE(analyser.analyze().works_as_intended);

  const auto paths = analyser.slow_paths(10);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(analyser.sync_model().at(paths[0].capture).label, "dst0#0");
  EXPECT_EQ(analyser.sync_model().at(paths[0].launch).label, "src0#0");
}

TEST_F(ReportTest, PathsSortedWorstFirstAndLimited) {
  TopBuilder b("multi", lib_);
  const NetId clk = b.port_in("clk", true);
  for (int lane = 0; lane < 4; ++lane) {
    NetId n = b.latch("DFFT", b.port_in("d" + std::to_string(lane)), clk,
                      "src" + std::to_string(lane));
    for (int i = 0; i < 45 + 15 * lane; ++i) n = b.gate("INVX1", {n});
    b.port_out_net("q" + std::to_string(lane),
                   b.latch("DFFT", n, clk, "dst" + std::to_string(lane)));
  }
  const Design design = b.finish();
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(2), 0, ns(1));
  Hummingbird analyser(design, clocks);
  analyser.analyze();

  const auto all = analyser.slow_paths(10);
  ASSERT_EQ(all.size(), 4u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].slack, all[i].slack);
  }
  // The deepest lane (3) is worst.
  EXPECT_EQ(analyser.sync_model().at(all[0].capture).label, "dst3#0");

  const auto limited = analyser.slow_paths(2);
  ASSERT_EQ(limited.size(), 2u);
  EXPECT_EQ(limited[0].slack, all[0].slack);
}

TEST_F(ReportTest, StepArrivalsAreMonotoneAndEndAtCapture) {
  const Design design = make_two_path_design(48, 4);
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(2), 0, ns(1));
  Hummingbird analyser(design, clocks);
  analyser.analyze();
  const auto paths = analyser.slow_paths(1);
  ASSERT_EQ(paths.size(), 1u);
  const SlowPath& p = paths[0];
  ASSERT_GE(p.steps.size(), 2u);
  for (std::size_t i = 1; i < p.steps.size(); ++i) {
    EXPECT_GE(p.steps[i].arrival, p.steps[i - 1].arrival);
  }
  EXPECT_EQ(p.steps.back().node, analyser.sync_model().at(p.capture).data_in);
  // Alternating inverters flip the transition direction along the chain.
  bool saw_rise = false, saw_fall = false;
  for (const PathStep& s : p.steps) (s.rising ? saw_rise : saw_fall) = true;
  EXPECT_TRUE(saw_rise);
  EXPECT_TRUE(saw_fall);
}

TEST_F(ReportTest, FormatContainsLabelsAndSlacks) {
  const Design design = make_two_path_design(64, 4);
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(2), 0, ns(1));
  Hummingbird analyser(design, clocks);
  analyser.analyze();
  const std::string text = analyser.report(5);
  EXPECT_NE(text.find("violations: "), std::string::npos);
  EXPECT_NE(text.find("slow path: slack -"), std::string::npos);
  EXPECT_NE(text.find("dst0#0"), std::string::npos);
  EXPECT_NE(text.find("src0.Q"), std::string::npos);
}

TEST_F(ReportTest, FlagSlowPathsMarksOnlyCriticalNets) {
  Design design = make_two_path_design(64, 4);
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(2), 0, ns(1));
  Hummingbird analyser(design, clocks);
  analyser.analyze();
  analyser.flag_slow_paths_in(design);
  // The long lane has 64 inverter nets plus endpoints; the short lane none.
  EXPECT_GT(design.num_slow_nets(), 60u);
  const Module& top = design.top();
  // Short-lane capture net must be unflagged.
  const Instance& dst1 = top.inst(top.find_inst("dst1"));
  const Cell& cell = lib_->cell(dst1.cell);
  EXPECT_FALSE(design.is_slow_net(dst1.conn[cell.sync().data_in]));
}

// Worst-K enumeration must be deterministic when several paths tie on
// slack.  Multi-frequency clocks are the stress case: every fast-clock
// element expands into several generic instances per overall period, all
// with identical windows, so structurally-identical lanes produce whole
// groups of equal-slack violators.  The contract: ties break on ascending
// SyncId, and the enumeration is bit-identical across repeated runs and
// across serial / pooled analysis.
TEST_F(ReportTest, EqualSlackTieBreakDeterministicUnderMultiFrequency) {
  // Four structurally identical violating lanes on the fast clock and two on
  // the slow clock; within each clock domain all lanes tie exactly.
  TopBuilder b("ties", lib_);
  const NetId fast = b.port_in("fast", true);
  const NetId slow = b.port_in("slow", true);
  for (int lane = 0; lane < 4; ++lane) {
    NetId n = b.latch("DFFT", b.port_in("df" + std::to_string(lane)), fast,
                      "fsrc" + std::to_string(lane));
    for (int i = 0; i < 48; ++i) n = b.gate("INVX1", {n});
    b.port_out_net("qf" + std::to_string(lane),
                   b.latch("DFFT", n, fast, "fdst" + std::to_string(lane)));
  }
  for (int lane = 0; lane < 2; ++lane) {
    NetId n = b.latch("DFFT", b.port_in("ds" + std::to_string(lane)), slow,
                      "ssrc" + std::to_string(lane));
    for (int i = 0; i < 48; ++i) n = b.gate("INVX1", {n});
    b.port_out_net("qs" + std::to_string(lane),
                   b.latch("DFFT", n, slow, "sdst" + std::to_string(lane)));
  }
  const Design design = b.finish();
  ClockSet clocks;
  clocks.add_simple_clock("fast", ns(2), 0, ns(1));   // 2 pulses per period
  clocks.add_simple_clock("slow", ns(4), 0, ns(2));   // overall period 4 ns
  ThreadPool pool(4);

  auto enumerate = [&](ThreadPool* p) {
    HummingbirdOptions options;
    options.alg1.pool = p;
    Hummingbird analyser(design, clocks, options);
    analyser.analyze();
    return analyser.slow_paths(100);
  };

  const auto ref = enumerate(nullptr);
  // Fast lanes contribute two generic capture instances each; expect a
  // tie group larger than one for both domains.
  ASSERT_GE(ref.size(), 6u);
  std::size_t tied = 0;
  for (std::size_t i = 1; i < ref.size(); ++i) {
    ASSERT_LE(ref[i - 1].slack, ref[i].slack);  // worst first
    if (ref[i - 1].slack == ref[i].slack) {
      ++tied;
      // The documented tie-break: ascending SyncId within a slack group.
      EXPECT_LT(ref[i - 1].capture.index(), ref[i].capture.index());
    }
  }
  EXPECT_GE(tied, 3u);

  // Bit-identical across repeated runs and across serial vs pooled analysis,
  // including the full step traces.
  for (int round = 0; round < 3; ++round) {
    const auto got = enumerate(round == 2 ? nullptr : &pool);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i].slack, ref[i].slack);
      EXPECT_EQ(got[i].capture, ref[i].capture);
      EXPECT_EQ(got[i].launch, ref[i].launch);
      ASSERT_EQ(got[i].steps.size(), ref[i].steps.size());
      for (std::size_t s = 0; s < ref[i].steps.size(); ++s) {
        EXPECT_EQ(got[i].steps[s].node, ref[i].steps[s].node);
        EXPECT_EQ(got[i].steps[s].arrival, ref[i].steps[s].arrival);
        EXPECT_EQ(got[i].steps[s].rising, ref[i].steps[s].rising);
      }
    }
  }

  // Truncation keeps the same deterministic prefix.
  HummingbirdOptions options;
  Hummingbird analyser(design, clocks, options);
  analyser.analyze();
  const auto limited = analyser.slow_paths(5);
  ASSERT_EQ(limited.size(), 5u);
  for (std::size_t i = 0; i < limited.size(); ++i) {
    EXPECT_EQ(limited[i].capture, ref[i].capture);
  }
}

TEST_F(ReportTest, CleanDesignReportsNoViolations) {
  const Design design = make_two_path_design(4, 2);
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(10), 0, ns(4));
  Hummingbird analyser(design, clocks);
  EXPECT_TRUE(analyser.analyze().works_as_intended);
  EXPECT_TRUE(analyser.slow_paths(10).empty());
  EXPECT_NE(analyser.report().find("violations: 0"), std::string::npos);
}

}  // namespace
}  // namespace hb
