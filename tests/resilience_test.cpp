// Resilient-runtime layer: structured parse diagnostics with recovery,
// degraded-mode analysis of invalid designs, watchdog budgets, thread-pool
// fault containment, and fault-injected cache corruption self-healing.
#include <gtest/gtest.h>

#include <atomic>

#include "clocks/clock_io.hpp"
#include "gen/des.hpp"
#include "gen/pipeline.hpp"
#include "netlist/builder.hpp"
#include "netlist/library_io.hpp"
#include "netlist/netlist_io.hpp"
#include "netlist/stdcells.hpp"
#include "netlist/validate.hpp"
#include "sta/hummingbird.hpp"
#include "util/cancel.hpp"
#include "util/faultinject.hpp"
#include "util/thread_pool.hpp"

namespace hb {
namespace {

// ---------------------------------------------------------------------------
// Structured diagnostics + parser recovery
// ---------------------------------------------------------------------------

TEST(DiagnosticsTest, NetlistParserRecoversAndCollectsAllErrors) {
  auto lib = make_standard_library();
  DiagnosticSink sink;
  const Design d = netlist_from_string(
      "design demo\n"
      "module demo\n"
      "  port a input\n"
      "  frobnicate x y\n"          // unknown keyword
      "  inst u1 NOSUCHCELL\n"      // unknown cell
      "  inst u2 INVX1\n"           // fine
      "  net n1\n"
      "  conn n1 u2.A\n"
      "  conn n1 u9.A\n"            // unknown instance
      "  bind n1 a\n"
      "endmodule\n"
      "top demo\n",
      lib, sink);
  // All three problems reported, with locations, and the good statements
  // still landed in the database.
  EXPECT_GE(sink.error_count(), 3u);
  for (const Diagnostic& diag : sink.all()) {
    EXPECT_TRUE(diag.loc.valid()) << diag.to_string();
  }
  EXPECT_TRUE(d.top().find_inst("u2").valid());
  EXPECT_FALSE(d.top().find_inst("u1").valid());
}

TEST(DiagnosticsTest, LegacyNetlistApiStillFailsFast) {
  auto lib = make_standard_library();
  EXPECT_THROW(netlist_from_string("design d\nmodule d\n  bogus\n", lib), Error);
}

TEST(DiagnosticsTest, LibraryParserRecoversWithLocations) {
  DiagnosticSink sink;
  auto lib = library_from_string(
      "library tiny\n"
      "cell BUF comb\n"
      "  in A 2.0\n"
      "  out Y\n"
      "  arc A Y pos 50 notanumber 3.0 2.8\n"  // bad number -> arc skipped
      "  arc A Y pos 50 45 3.0 2.8\n"
      "endcell\n"
      "cell OK comb\n"
      "  in A 1.0\n"
      "  out Y\n"
      "  arc A Y neg 10 10 1.0 1.0\n"
      "endcell\n",
      sink);
  ASSERT_TRUE(sink.has_errors());
  EXPECT_EQ(sink.first_error().code, DiagCode::kParseBadNumber);
  EXPECT_EQ(sink.first_error().loc.line, 5);
  EXPECT_GT(sink.first_error().loc.col, 0);
  // Both cells survive; BUF keeps the one good arc.
  EXPECT_EQ(lib->num_cells(), 2u);
  EXPECT_EQ(lib->cell(lib->require("BUF")).arcs().size(), 1u);
}

TEST(DiagnosticsTest, ClockSpecErrorsCarryLineAndColumn) {
  DiagnosticSink sink;
  timing_spec_from_string(
      "clock phi period 10ns pulse 0 4ns\n"
      "input d arrival notatime\n",
      sink);
  ASSERT_TRUE(sink.has_errors());
  EXPECT_EQ(sink.first_error().code, DiagCode::kParseBadNumber);
  EXPECT_EQ(sink.first_error().loc.line, 2);
  EXPECT_GT(sink.first_error().loc.col, 0);
  EXPECT_FALSE(sink.first_error().hint.empty());
}

// ---------------------------------------------------------------------------
// Graceful degradation
// ---------------------------------------------------------------------------

/// d -> INV u1 -> DFF ff -> q, plus (when `broken`) a parallel path whose
/// first gate reads a floating net: float -> INV u2 -> DFF ff2 -> q2.
Design make_split_design(std::shared_ptr<const Library> lib, bool broken) {
  TopBuilder b(broken ? "split_bad" : "split_good", lib);
  const NetId clk = b.port_in("clk", true);
  const NetId d = b.port_in("d");
  const NetId inv = b.gate("INVX1", {d}, "u1");
  const NetId q = b.latch("DFFT", inv, clk, "ff");
  b.port_out_net("q", q);
  if (broken) {
    const NetId floating = b.net("floating");  // no driver
    const NetId inv2 = b.gate("INVX1", {floating}, "u2");
    const NetId q2 = b.latch("DFFT", inv2, clk, "ff2");
    b.port_out_net("q2", q2);
  }
  return b.finish();
}

TEST(DegradedModeTest, QuarantineClosurePoisonsDownstreamLogic) {
  auto lib = make_standard_library();
  const Design bad = make_split_design(lib, true);
  const ValidationReport report = validate(bad);
  ASSERT_FALSE(report.ok());
  const std::vector<bool> q = compute_quarantine(bad, report);
  // u2 reads the dead net; ff2 reads u2's now-dead output.  The good path
  // is untouched.
  EXPECT_TRUE(q.at(bad.top().find_inst("u2").value()));
  EXPECT_TRUE(q.at(bad.top().find_inst("ff2").value()));
  EXPECT_FALSE(q.at(bad.top().find_inst("u1").value()));
  EXPECT_FALSE(q.at(bad.top().find_inst("ff").value()));
}

TEST(DegradedModeTest, InvalidDesignAnalysedPartially) {
  auto lib = make_standard_library();
  const Design bad = make_split_design(lib, true);
  const Design good = make_split_design(lib, false);
  const ClockSet clocks = make_single_clock(ns(4), ns(2));

  // Default mode refuses the design.
  EXPECT_THROW(Hummingbird(bad, clocks), Error);

  HummingbirdOptions opt;
  opt.degraded = true;
  Hummingbird degraded(bad, clocks, opt);
  EXPECT_EQ(degraded.num_quarantined(), 2u);
  EXPECT_EQ(degraded.stats().quarantined_insts, 2u);
  EXPECT_FALSE(degraded.diagnostics().empty());

  const Algorithm1Result res = degraded.analyze();
  EXPECT_EQ(res.status, AnalysisStatus::kPartial);

  // The salvageable part is analysed exactly as in the clean design.
  Hummingbird reference(good, clocks);
  const Algorithm1Result ref = reference.analyze();
  EXPECT_EQ(ref.status, AnalysisStatus::kComplete);
  EXPECT_EQ(res.worst_slack, ref.worst_slack);
  EXPECT_EQ(res.works_as_intended, ref.works_as_intended);

  // Constraints inherit the partial tag.
  EXPECT_EQ(degraded.generate_constraints().status, AnalysisStatus::kPartial);
  EXPECT_EQ(reference.generate_constraints().status, AnalysisStatus::kComplete);
}

// ---------------------------------------------------------------------------
// Watchdogs / budgets
// ---------------------------------------------------------------------------

TEST(WatchdogTest, CancelledAnalysisTagsTimedOut) {
  auto lib = make_standard_library();
  DesSpec spec;
  spec.rounds = 2;
  const Design des = make_des(lib, spec);
  // Deliberately hopeless clock so the first evaluation does not succeed.
  const ClockSet clocks = make_single_clock(ps(400), ps(160));

  CancelToken cancel;
  cancel.cancel();
  HummingbirdOptions opt;
  opt.alg1.budget.cancel = &cancel;
  Hummingbird analyser(des, clocks, opt);
  const Algorithm1Result res = analyser.analyze();
  EXPECT_EQ(res.status, AnalysisStatus::kTimedOut);
  EXPECT_FALSE(res.works_as_intended);

  // Same budget, untripped token: runs to completion.
  cancel.reset();
  const Algorithm1Result full = analyser.analyze();
  EXPECT_EQ(full.status, AnalysisStatus::kComplete);
}

/// Two-phase latch chain whose analysis needs several slack-transfer cycles
/// (L1 -> 110 inverters -> L2): ideal for exercising cycle budgets and the
/// incremental update path.
Design make_latch_chain(std::shared_ptr<const Library> lib) {
  TopBuilder b("chain", lib);
  const NetId phi1 = b.port_in("phi1", true);
  const NetId phi2 = b.port_in("phi2", true);
  NetId n = b.latch("TLATCH", b.port_in("d"), phi1, "l1");
  for (int i = 0; i < 110; ++i) n = b.gate("INVX1", {n});
  const NetId q = b.latch("TLATCH", n, phi2, "l2");
  b.port_out_net("q", q);
  return b.finish();
}

TEST(WatchdogTest, CycleCapTagsTimedOut) {
  auto lib = make_standard_library();
  const Design chain = make_latch_chain(lib);
  const ClockSet clocks = make_two_phase_clocks(ns(10));

  // Unbudgeted, the transfers rescue the design (several cycles needed).
  Hummingbird full(chain, clocks);
  const Algorithm1Result unbounded = full.analyze();
  EXPECT_EQ(unbounded.status, AnalysisStatus::kComplete);
  EXPECT_TRUE(unbounded.works_as_intended);
  ASSERT_GT(unbounded.forward_cycles + unbounded.backward_cycles, 1);

  // Capped at one transfer cycle, the analysis stops early with the last
  // (conservative, still-failing) offsets and says so.
  HummingbirdOptions opt;
  opt.alg1.budget.max_total_cycles = 1;
  Hummingbird capped(chain, clocks, opt);
  const Algorithm1Result res = capped.analyze();
  EXPECT_EQ(res.status, AnalysisStatus::kTimedOut);
  EXPECT_FALSE(res.works_as_intended);
}

TEST(WatchdogTest, CancelledConstraintGenerationTagsTimedOut) {
  auto lib = make_standard_library();
  DesSpec spec;
  spec.rounds = 2;
  const Design des = make_des(lib, spec);
  const ClockSet clocks = make_single_clock(ns(6), ps(2400));

  CancelToken cancel;
  HummingbirdOptions opt;
  opt.alg2.budget.cancel = &cancel;
  Hummingbird analyser(des, clocks, opt);
  analyser.analyze();
  cancel.cancel();
  EXPECT_EQ(analyser.generate_constraints().status, AnalysisStatus::kTimedOut);
}

// ---------------------------------------------------------------------------
// Thread pool fault containment
// ---------------------------------------------------------------------------

TEST(ThreadPoolFaultTest, TaskExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 32; ++i) {
    if (i == 7) {
      tasks.push_back([] { raise("task 7 failed"); });
    } else {
      tasks.push_back([&ran] { ++ran; });
    }
  }
  EXPECT_THROW(pool.run_batch(tasks), Error);
  // The failed task did not starve the rest of the batch.
  EXPECT_EQ(ran.load(), 31);

  // The pool remains fully usable.
  ran = 0;
  std::vector<std::function<void()>> clean;
  for (int i = 0; i < 16; ++i) clean.push_back([&ran] { ++ran; });
  EXPECT_TRUE(pool.run_batch(clean));
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolFaultTest, CancelSkipsRemainingTasks) {
  ThreadPool pool(2);
  CancelToken cancel;
  cancel.cancel();
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 8; ++i) tasks.push_back([&ran] { ++ran; });
  EXPECT_FALSE(pool.run_batch(tasks, &cancel));
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPoolFaultTest, InjectedTaskFaultSurfacesAsError) {
  FaultInjector::Config cfg;
  cfg.seed = 42;
  cfg.probability[static_cast<int>(FaultSite::kPoolTask)] = 1.0;
  FaultInjector::Scope scope(cfg);

  ThreadPool pool(2);
  std::vector<std::function<void()>> tasks;
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) tasks.push_back([&ran] { ++ran; });
  EXPECT_THROW(pool.run_batch(tasks), FaultInjectedError);
  EXPECT_EQ(ran.load(), 0);  // probability 1: every task replaced by a fault
  EXPECT_EQ(FaultInjector::instance().fire_count(FaultSite::kPoolTask), 4u);
}

TEST(FaultInjectTest, SpuriousCancellationLatches) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  {
    FaultInjector::Config cfg;
    cfg.seed = 7;
    cfg.probability[static_cast<int>(FaultSite::kSpuriousCancel)] = 1.0;
    FaultInjector::Scope scope(cfg);
    EXPECT_TRUE(token.cancelled());
  }
  // The injected cancellation latched, exactly like a real cancel().
  EXPECT_TRUE(token.cancelled());
  token.reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(FaultInjectTest, FiringSequenceIsDeterministic) {
  FaultInjector::Config cfg;
  cfg.seed = 1234;
  cfg.probability[static_cast<int>(FaultSite::kPoolTask)] = 0.5;
  std::vector<bool> first, second;
  {
    FaultInjector::Scope scope(cfg);
    for (int i = 0; i < 64; ++i) {
      first.push_back(FaultInjector::instance().should_fire(FaultSite::kPoolTask));
    }
  }
  {
    FaultInjector::Scope scope(cfg);
    for (int i = 0; i < 64; ++i) {
      second.push_back(FaultInjector::instance().should_fire(FaultSite::kPoolTask));
    }
  }
  EXPECT_EQ(first, second);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

// ---------------------------------------------------------------------------
// Cache corruption: detection and bit-identical self-healing
// ---------------------------------------------------------------------------

TEST(SelfHealTest, VerifyCacheDetectsInjectedCorruption) {
  auto lib = make_standard_library();
  DesSpec spec;
  spec.rounds = 2;
  const Design des = make_des(lib, spec);
  const ClockSet clocks = make_single_clock(ns(6), ps(2400));

  Hummingbird analyser(des, clocks);
  SlackEngine& engine = analyser.engine_mut();
  engine.compute();
  EXPECT_TRUE(engine.verify_cache());

  const TimePs clean_slack = engine.worst_terminal_slack();
  {
    FaultInjector::Config cfg;
    cfg.seed = 99;
    cfg.probability[static_cast<int>(FaultSite::kCacheCorrupt)] = 1.0;
    FaultInjector::Scope scope(cfg);
    engine.compute();  // one cached entry is perturbed after checksumming
    EXPECT_FALSE(engine.verify_cache());
  }
  // verify_cache dropped the poisoned cache; the next update self-heals
  // with a full recompute that is bit-identical to the clean state.
  engine.update();
  EXPECT_TRUE(engine.verify_cache());
  EXPECT_EQ(engine.worst_terminal_slack(), clean_slack);
}

TEST(SelfHealTest, ParanoidAnalysisHealsUnderContinuousCorruption) {
  auto lib = make_standard_library();
  // The latch chain's analysis makes several incremental updates, so the
  // paranoid verification runs repeatedly against a cache that is corrupted
  // after every write.
  const Design des = make_latch_chain(lib);
  const ClockSet clocks = make_two_phase_clocks(ns(10));

  Hummingbird reference(des, clocks);
  const Algorithm1Result clean = reference.analyze();

  HummingbirdOptions opt;
  opt.paranoid_self_check = true;
  Hummingbird paranoid(des, clocks, opt);
  Algorithm1Result healed;
  {
    FaultInjector::Config cfg;
    cfg.seed = 5;
    cfg.probability[static_cast<int>(FaultSite::kCacheCorrupt)] = 1.0;
    FaultInjector::Scope scope(cfg);
    healed = paranoid.analyze();
  }
  // Every incremental step found its cache poisoned and recomputed; the
  // final answer is bit-identical to the unfaulted run.
  const IncrementalStats& stats = paranoid.engine().incremental_stats();
  EXPECT_GT(stats.self_checks, 0u);
  EXPECT_GT(stats.self_heals, 0u);
  EXPECT_EQ(healed.status, clean.status);
  EXPECT_EQ(healed.worst_slack, clean.worst_slack);
  EXPECT_EQ(healed.works_as_intended, clean.works_as_intended);

  // Per-node results match too.
  const TimingGraph& graph = reference.graph();
  for (std::uint32_t n = 0; n < graph.num_nodes(); ++n) {
    const NodeTiming& a = reference.engine().node_timing(TNodeId(n));
    const NodeTiming& b = paranoid.engine().node_timing(TNodeId(n));
    ASSERT_EQ(a.slack, b.slack) << graph.node_name(TNodeId(n));
    ASSERT_EQ(a.ready.rise, b.ready.rise);
    ASSERT_EQ(a.required.fall, b.required.fall);
  }
}

}  // namespace
}  // namespace hb
