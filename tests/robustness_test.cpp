// Robustness and scale: the parsers must never crash on mutated input
// (either parse cleanly or report structured diagnostics), analyses must be
// deterministic across runs, and run time must scale sanely with design
// size.
#include <gtest/gtest.h>

#include "clocks/clock_io.hpp"
#include "gen/des.hpp"
#include "gen/filter.hpp"
#include "netlist/blif_io.hpp"
#include "netlist/library_io.hpp"
#include "netlist/netlist_io.hpp"
#include "netlist/stdcells.hpp"
#include "netlist/validate.hpp"
#include "scenario/corner_set.hpp"
#include "sta/hummingbird.hpp"
#include "util/rng.hpp"

namespace hb {
namespace {

/// Apply 1-8 random mutations (byte flips, truncation, line drops, chunk
/// duplication) to `text`, shared by all parser fuzzers.
std::string mutate_text(std::string text, std::uint64_t seed) {
  Rng rng(seed);
  const int mutations = 1 + static_cast<int>(rng.pick(8));
  for (int m = 0; m < mutations; ++m) {
    switch (rng.pick(4)) {
      case 0: {  // flip a byte
        if (!text.empty()) {
          text[rng.pick(text.size())] =
              static_cast<char>('!' + rng.pick(90));
        }
        break;
      }
      case 1: {  // truncate
        text = text.substr(0, rng.pick(text.size() + 1));
        break;
      }
      case 2: {  // drop a line
        const std::size_t start = rng.pick(text.size() + 1);
        const std::size_t nl = text.find('\n', start);
        if (nl != std::string::npos) {
          const std::size_t prev = text.rfind('\n', start);
          const std::size_t from = prev == std::string::npos ? 0 : prev + 1;
          text.erase(from, nl - from + 1);
        }
        break;
      }
      case 3: {  // duplicate a random chunk
        if (!text.empty()) {
          const std::size_t at = rng.pick(text.size());
          text.insert(at, text.substr(at, rng.pick(40) + 1));
        }
        break;
      }
    }
  }
  return text;
}

class ParserFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

// Mutate a valid netlist (byte flips, line drops, truncation) and feed it
// back: the parser must either produce a design or throw hb::Error — never
// crash or hang.
TEST_P(ParserFuzzTest, MutatedNetlistNeverCrashes) {
  auto lib = make_standard_library();
  DesSpec spec;
  spec.rounds = 1;
  spec.half_width = 4;
  const std::string base = netlist_to_string(make_des(lib, spec));
  const std::string text = mutate_text(base, GetParam());

  // Legacy fail-fast API: parse or throw hb::Error, never crash or hang.
  try {
    const Design d = netlist_from_string(text, lib);
    validate(d);  // may report errors; must not crash
  } catch (const Error&) {
    // expected for most mutations
  }

  // Recovering API: never throws on malformed *syntax*; either the text
  // round-trips identically or diagnostics explain what was dropped.
  DiagnosticSink sink;
  const Design d = netlist_from_string(text, lib, sink);
  if (d.top_id().valid()) validate(d);
  if (sink.empty()) {
    EXPECT_NO_THROW(netlist_from_string(text, lib));
  }
}

// Same contract for the BLIF frontend: the recovering parse/elaborate never
// throws on mutated syntax, the fail-fast variant throws hb::Error at worst,
// and an error-free recovering pass implies the fail-fast pass succeeds too.
TEST_P(ParserFuzzTest, MutatedBlifNeverCrashes) {
  auto lib = make_standard_library();
  DesSpec spec;
  spec.rounds = 1;
  spec.half_width = 4;
  const std::string base = blif_to_string(make_des(lib, spec));
  const std::string text = mutate_text(base, GetParam() * 4241 + 9);

  try {
    const Design d = blif_design_from_string(text, lib);
    validate(d);  // may report errors; must not crash
  } catch (const Error&) {
    // expected for most mutations
  }

  DiagnosticSink sink;
  const Design d = blif_design_from_string(text, lib, sink);
  if (d.top_id().valid()) validate(d);
  if (!sink.has_errors()) {
    EXPECT_NO_THROW(blif_design_from_string(text, lib));
  }
}

TEST_P(ParserFuzzTest, MutatedLibraryNeverCrashes) {
  const std::string base = library_to_string(*make_standard_library());
  const std::string text = mutate_text(base, GetParam() * 7919 + 1);

  try {
    library_from_string(text);
  } catch (const Error&) {
  }

  DiagnosticSink sink;
  auto lib = library_from_string(text, sink);
  ASSERT_NE(lib, nullptr);
  if (sink.empty()) {
    EXPECT_NO_THROW(library_from_string(text));
  }
}

TEST_P(ParserFuzzTest, MutatedTimingSpecNeverCrashes) {
  const std::string base =
      "# demo spec\n"
      "clock phi1 period 20ns pulse 0 8ns\n"
      "clock phi2 period 10ns pulse 2ns 6ns pulse 7ns 9ns\n"
      "input d arrival 3ns offset 100ps\n"
      "output q required 18ns offset -250ps\n";
  const std::string text = mutate_text(base, GetParam() * 6151 + 3);

  try {
    timing_spec_from_string(text);
  } catch (const Error&) {
  }

  DiagnosticSink sink;
  timing_spec_from_string(text, sink);
  if (sink.empty()) {
    EXPECT_NO_THROW(timing_spec_from_string(text));
  }
}

// Corner-spec parser under the same mutation battery (the CI fuzz job's
// `Seeds/ParserFuzzTest.*` filter picks this up, ASan/UBSan build).
TEST_P(ParserFuzzTest, MutatedCornerSpecNeverCrashes) {
  const std::string base =
      "# sign-off corners\n"
      "corner typical 1000\n"
      "corner slow 1250\n"
      "wire slow 1300\n"
      "cell slow NAND2X1 1400\n"
      "corner fast 800\n"
      "wire fast 780\n";
  const std::string text = mutate_text(base, GetParam() * 2663 + 7);

  try {
    parse_corner_spec_or_throw(text);
  } catch (const Error&) {
    // expected for most mutations
  }

  DiagnosticSink sink;
  parse_corner_spec(text, sink);
  if (!sink.has_errors()) {
    EXPECT_NO_THROW(parse_corner_spec_or_throw(text));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(DeterminismTest, RepeatedAnalysesIdentical) {
  auto lib = make_standard_library();
  DesSpec spec;
  spec.rounds = 4;
  const Design des = make_des(lib, spec);
  const ClockSet clocks = make_single_clock(ns(6), ps(2400));

  TimePs first_slack = 0;
  int first_cycles = -1;
  for (int run = 0; run < 3; ++run) {
    Hummingbird analyser(des, clocks);
    const Algorithm1Result res = analyser.analyze();
    if (run == 0) {
      first_slack = res.worst_slack;
      first_cycles = res.forward_cycles + res.backward_cycles;
    } else {
      EXPECT_EQ(res.worst_slack, first_slack);
      EXPECT_EQ(res.forward_cycles + res.backward_cycles, first_cycles);
    }
  }
}

TEST(ScaleTest, AnalysisScalesWithRounds) {
  auto lib = make_standard_library();
  const ClockSet clocks = make_single_clock(ns(40), ns(16));
  std::size_t prev_cells = 0;
  double prev_time = 0.0;
  for (int rounds : {2, 8}) {
    DesSpec spec;
    spec.rounds = rounds;
    const Design des = make_des(lib, spec);
    Hummingbird analyser(des, clocks);
    analyser.analyze();
    const double total = analyser.stats().preprocess_seconds +
                         analyser.stats().analysis_seconds;
    if (prev_cells != 0) {
      EXPECT_GT(des.total_cell_count(), prev_cells * 3);
      // 4x the cells must not cost more than ~40x the time (loose bound:
      // the point is to catch accidental quadratic blowups).
      EXPECT_LT(total, std::max(prev_time * 40, 2.0));
    }
    prev_cells = des.total_cell_count();
    prev_time = total;
  }
}

TEST(ScaleTest, MultirateFilterAnalysesCleanly) {
  auto lib = make_standard_library();
  FilterSpec spec;
  spec.width = 12;
  spec.taps = 6;
  const Design filt = make_multirate_filter(lib, spec);
  ASSERT_TRUE(validate(filt).ok()) << validate(filt).to_string();
  Hummingbird analyser(filt, make_multirate_clocks(ns(20)));
  EXPECT_TRUE(analyser.analyze().works_as_intended);
  // Fast-domain registers contribute two instances each.
  std::size_t fast_regs = 0;
  for (const Instance& inst : filt.top().insts()) {
    if (inst.is_cell() && filt.lib().cell(inst.cell).is_sequential() &&
        inst.name.rfind("tap", 0) == 0) {
      ++fast_regs;
    }
  }
  std::size_t tap_instances = 0;
  const SyncModel& sync = analyser.sync_model();
  for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
    if (!sync.at(SyncId(i)).is_virtual &&
        sync.at(SyncId(i)).label.rfind("tap", 0) == 0) {
      ++tap_instances;
    }
  }
  EXPECT_EQ(tap_instances, 2 * fast_regs);
}

}  // namespace
}  // namespace hb
