// Behaviour of the full analyser on Table 1-scale designs: cluster
// structure of the DES datapath, two-phase transparent variants, and the
// interaction of the whole stack at realistic sizes.
#include <gtest/gtest.h>

#include "constraints/feasibility.hpp"
#include "gen/alu.hpp"
#include "gen/des.hpp"
#include "gen/fsm.hpp"
#include "netlist/stdcells.hpp"
#include "sta/hummingbird.hpp"
#include "sta/search.hpp"

namespace hb {
namespace {

class ScaleBehaviorTest : public ::testing::Test {
 protected:
  std::shared_ptr<const Library> lib_ = make_standard_library();
};

TEST_F(ScaleBehaviorTest, DesClusterStructure) {
  DesSpec spec;
  spec.rounds = 4;
  const Design des = make_des(lib_, spec);
  Hummingbird analyser(des, make_single_clock(ns(40), ns(16)));
  analyser.analyze();

  // Single-phase flip-flop design: one pass per data cluster, one settling
  // time per node — and the register-to-register round logic forms per-
  // round clusters, so cluster count scales with rounds.
  EXPECT_GT(analyser.stats().clusters, 4u);
  const TimingGraph& graph = analyser.graph();
  for (std::uint32_t n = 0; n < graph.num_nodes(); ++n) {
    EXPECT_LE(analyser.engine().node_timing(TNodeId(n)).settling_count, 1);
  }
  // Every pass belongs to a cluster with sources and sinks.
  EXPECT_LE(analyser.stats().analysis_passes, analyser.stats().clusters);
}

TEST_F(ScaleBehaviorTest, DesMinimumPeriodIsConsistent) {
  DesSpec spec;
  spec.rounds = 2;
  const Design des = make_des(lib_, spec);
  const auto factory = [](TimePs p) { return make_single_clock(p, p * 2 / 5); };
  MinPeriodOptions options;
  options.lo = ns(1);
  options.hi = ns(30);
  const TimePs p = find_min_period(des, factory, options);
  ASSERT_LT(p, ns(30));
  // Boundary behaviour and oracle agreement on both sides.
  for (const TimePs probe : {p, p - options.grid}) {
    const ClockSet clocks = factory(probe);
    Hummingbird analyser(des, clocks);
    const bool ok = analyser.analyze().works_as_intended;
    EXPECT_EQ(ok, probe == p);
    const FeasibilityResult feas = check_intended_behaviour(analyser.engine());
    if (ok) {
      EXPECT_TRUE(feas.feasible);
    }
    if (!feas.feasible) {
      EXPECT_FALSE(ok);
    }
  }
}

TEST_F(ScaleBehaviorTest, SinglePhaseTransparentWindowIsLeadToTrail) {
  // On a *single-phase* clock, a transparent latch launches at the leading
  // edge and the next capture closes at the very next trailing edge — the
  // data window is only the pulse width's complement of the period, whereas
  // trailing-edge flip-flops get the full period.  (Transparency pays off
  // in multi-phase schemes — EngineTest.CycleStealingThroughTransparent-
  // Latches — not here.)  The analyser must reflect that.
  const auto factory = [](TimePs p) { return make_single_clock(p, p * 2 / 5); };
  MinPeriodOptions options;
  options.lo = ns(1);
  options.hi = ns(40);

  AluSpec ff_spec;
  ff_spec.bits = 12;
  ff_spec.reg_cell = "DFFT";
  const TimePs ff_period = find_min_period(make_alu(lib_, ff_spec), factory, options);

  AluSpec lat_spec;
  lat_spec.bits = 12;
  lat_spec.reg_cell = "TLATCH";
  const TimePs lat_period =
      find_min_period(make_alu(lib_, lat_spec), factory, options);

  EXPECT_GT(lat_period, ff_period);
  // The lead-to-trail window is ~40% of the period, so the ratio should be
  // roughly 1/0.4 = 2.5x (loosely bounded).
  EXPECT_LT(lat_period, 4 * ff_period);
}

TEST_F(ScaleBehaviorTest, FsmHierarchicalPreprocessingSmaller) {
  const Design flat = make_fsm_flat(lib_);
  const Design hier = make_fsm_hier(lib_);
  const ClockSet clocks = make_single_clock(ns(10), ns(4));
  Hummingbird a_flat(flat, clocks);
  Hummingbird a_hier(hier, clocks);
  // The hierarchical description produces a much smaller timing problem
  // (the paper's SM1F vs SM1H contrast).
  EXPECT_LT(a_hier.stats().graph_nodes, a_flat.stats().graph_nodes / 3);
  EXPECT_LT(a_hier.stats().graph_arcs, a_flat.stats().graph_arcs / 3);
  EXPECT_LE(a_hier.stats().analysis_passes, a_flat.stats().analysis_passes);
}

TEST_F(ScaleBehaviorTest, ReportOnDesNamesRealPaths) {
  DesSpec spec;
  spec.rounds = 2;
  const Design des = make_des(lib_, spec);
  // Deliberately too fast (a DES round is only ~5 gate levels deep).
  Hummingbird analyser(des, make_single_clock(ps(480), ps(200)));
  EXPECT_FALSE(analyser.analyze().works_as_intended);
  const auto paths = analyser.slow_paths(5);
  ASSERT_FALSE(paths.empty());
  for (const SlowPath& p : paths) {
    EXPECT_LT(p.slack, 0);
    EXPECT_GE(p.steps.size(), 3u);
    // Launch and capture are register instances of the datapath.
    const std::string cap = analyser.sync_model().at(p.capture).label;
    EXPECT_TRUE(cap.find("reg") != std::string::npos ||
                cap.rfind("out:", 0) == 0)
        << cap;
  }
}

}  // namespace
}  // namespace hb
