// Tests for the concurrent timing query service (src/service).
//
// The load-bearing contract: a session's published snapshot after any
// sequence of what-if edits and commits is bit-identical to a fresh full
// analysis of the same design with the same accumulated edit history —
// serially and with 8 concurrent reader threads hammering the read path
// (the TSan job runs this file; see .github/workflows/ci.yml).  All
// comparisons are exact: times are integer picoseconds.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <sstream>
#include <thread>

#include "gen/random_network.hpp"
#include "netlist/stdcells.hpp"
#include "service/protocol.hpp"
#include "service/session.hpp"
#include "service/tcp_server.hpp"
#include "sta/hummingbird.hpp"
#include "sta/report.hpp"
#include "util/error.hpp"

namespace hb {
namespace {

RandomNetworkSpec test_spec() {
  RandomNetworkSpec spec;
  spec.seed = 7;
  spec.num_clocks = 2;
  spec.banks = 4;
  spec.bank_width = 4;
  spec.gates_per_stage = 40;  // worst slack -1837 ps, 5 slow paths
  return spec;
}

std::shared_ptr<Session> make_session(SessionOptions opt = {},
                                      RandomNetworkSpec spec = test_spec()) {
  RandomNetwork net = make_random_network(make_standard_library(), spec);
  return std::make_shared<Session>(std::move(net.design), std::move(net.clocks),
                                   HummingbirdOptions{}, opt);
}

/// Instance names of the first `n` combinational (or, with `sequential`,
/// sequential) cell instances of the top module.
std::vector<std::string> cell_names(const Design& d, std::size_t n,
                                    bool sequential) {
  std::vector<std::string> out;
  for (const Instance& inst : d.top().insts()) {
    if (!inst.is_cell()) continue;
    if (d.lib().cell(inst.cell).is_sequential() != sequential) continue;
    out.push_back(inst.name);
    if (out.size() == n) break;
  }
  return out;
}

/// The service contract: the session's published analysis equals a fresh
/// full analysis of session.design() with the session's accumulated delay
/// history replayed.  Exact comparison of every exposed quantity.
::testing::AssertionResult matches_fresh_analysis(Session& session) {
  HummingbirdOptions opt;
  opt.delay_adjust = session.delay_adjust_history();
  Hummingbird fresh(session.design(), session.clocks(), opt);
  const Algorithm1Result res = fresh.analyze();
  const std::shared_ptr<const AnalysisSnapshot> snap = session.snapshot();

  if (snap->worst_slack != res.worst_slack) {
    return ::testing::AssertionFailure()
           << "worst slack: snapshot " << snap->worst_slack << " vs fresh "
           << res.worst_slack;
  }
  if (snap->works_as_intended != res.works_as_intended) {
    return ::testing::AssertionFailure() << "works_as_intended differs";
  }
  const std::size_t nodes = fresh.graph().num_nodes();
  if (snap->nodes.size() != nodes) {
    return ::testing::AssertionFailure()
           << "node count: snapshot " << snap->nodes.size() << " vs fresh "
           << nodes;
  }
  for (std::size_t i = 0; i < nodes; ++i) {
    const NodeTiming& a = snap->nodes[i];
    const NodeTiming& b = fresh.engine().node_timing(TNodeId(static_cast<std::uint32_t>(i)));
    if (a.slack != b.slack || !(a.ready == b.ready) ||
        !(a.required == b.required) || a.has_ready != b.has_ready ||
        a.has_constraint != b.has_constraint ||
        a.settling_count != b.settling_count) {
      return ::testing::AssertionFailure()
             << "node " << fresh.graph().node_name(TNodeId(static_cast<std::uint32_t>(i)))
             << ": slack " << a.slack << " vs " << b.slack;
    }
  }
  // Worst paths: same slacks, endpoints and lengths in the same order.
  // 32 is the SessionOptions::max_paths default used by make_session().
  const std::vector<SlowPath> paths = fresh.slow_paths(32);
  if (snap->paths.size() != paths.size()) {
    return ::testing::AssertionFailure()
           << "path count: snapshot " << snap->paths.size() << " vs fresh "
           << paths.size();
  }
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const SnapshotPath& a = snap->paths[i];
    const SlowPath& b = paths[i];
    if (a.slack != b.slack || a.steps != b.steps.size() ||
        a.launch != fresh.sync_model().at(b.launch).label ||
        a.capture != fresh.sync_model().at(b.capture).label) {
      return ::testing::AssertionFailure() << "path " << i << " differs";
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(ServiceTest, InitialSnapshotMatchesFreshAnalysis) {
  auto session = make_session();
  EXPECT_TRUE(matches_fresh_analysis(*session));
  EXPECT_EQ(session->snapshot()->id, 1u);
  EXPECT_GT(session->snapshot()->num_violations, 0u);
}

TEST(ServiceTest, WhatIfEditsMatchFreshAnalysisSerially) {
  auto session = make_session();
  const std::vector<std::string> comb = cell_names(session->design(), 6, false);
  const std::vector<std::string> seq = cell_names(session->design(), 2, true);
  ASSERT_GE(comb.size(), 6u);
  ASSERT_GE(seq.size(), 1u);

  // Round 1: absorbed in-place edits.
  EXPECT_TRUE(session->execute("set_delay " + comb[0] + " 150ps").ok);
  EXPECT_TRUE(session->execute("set_delay " + comb[1] + " -40").ok);
  EXPECT_TRUE(session->execute("upsize " + comb[2]).ok);
  QueryResult commit = session->execute("commit");
  ASSERT_TRUE(commit.ok) << to_wire(commit);
  EXPECT_EQ(session->snapshot()->id, 2u);
  EXPECT_TRUE(matches_fresh_analysis(*session));

  // Round 2: an edit on a sequential element defers to a full rebuild.
  EXPECT_TRUE(session->execute("set_delay " + seq[0] + " 90ps").ok);
  EXPECT_TRUE(session->execute("set_delay " + comb[3] + " 210ps").ok);
  commit = session->execute("commit");
  ASSERT_TRUE(commit.ok) << to_wire(commit);
  EXPECT_EQ(session->snapshot()->id, 3u);
  EXPECT_TRUE(matches_fresh_analysis(*session));

  // Round 3: more absorbed edits on the rebuilt analyser.
  EXPECT_TRUE(session->execute("upsize " + comb[4]).ok);
  EXPECT_TRUE(session->execute("set_delay " + comb[5] + " 75ps").ok);
  commit = session->execute("commit");
  ASSERT_TRUE(commit.ok) << to_wire(commit);
  EXPECT_EQ(session->snapshot()->id, 4u);
  EXPECT_TRUE(matches_fresh_analysis(*session));

  // A no-op commit publishes nothing.
  commit = session->execute("commit");
  ASSERT_TRUE(commit.ok);
  EXPECT_NE(to_wire(commit).find("noop"), std::string::npos);
  EXPECT_EQ(session->snapshot()->id, 4u);
}

TEST(ServiceTest, CheckHoldMatchesFreshAnalysis) {
  auto session = make_session();
  const std::vector<std::string> comb = cell_names(session->design(), 1, false);
  ASSERT_GE(comb.size(), 1u);
  EXPECT_TRUE(session->execute("set_delay " + comb[0] + " 120ps").ok);
  ASSERT_TRUE(session->execute("commit").ok);

  // The verb must reproduce check_hold_times() on a fresh analyser with the
  // session's edit history replayed — labels, order and margins exactly.
  bool saw_violation = false;
  for (const TimePs margin : {TimePs(0), ns(2), ns(8)}) {
    const QueryResult r =
        session->execute("check_hold " + std::to_string(margin));
    ASSERT_TRUE(r.ok) << to_wire(r);

    HummingbirdOptions opt;
    opt.delay_adjust = session->delay_adjust_history();
    Hummingbird fresh(session->design(), session->clocks(), opt);
    fresh.analyze();
    const std::vector<HoldViolation> holds = fresh.check_hold_times(margin);
    saw_violation = saw_violation || !holds.empty();
    ASSERT_EQ(r.lines.size(), holds.size() + 1);
    EXPECT_EQ(r.lines[0], "ok check_hold " + fmt_ps(margin) + " violations " +
                              std::to_string(holds.size()));
    for (std::size_t i = 0; i < holds.size(); ++i) {
      const HoldViolation& v = holds[i];
      EXPECT_EQ(r.lines[i + 1],
                "  hold " + fresh.sync_model().at(v.launch).label + " -> " +
                    fresh.sync_model().at(v.capture).label + " margin " +
                    fmt_ps(v.margin));
    }
  }
  EXPECT_TRUE(saw_violation) << "no margin produced a violation; widen the "
                                "margin sweep so the line format is covered";

  // Canonicalisation: unit suffixes and plain picoseconds hit the same verb.
  EXPECT_TRUE(session->execute("check_hold 1ns").ok);
  EXPECT_TRUE(session->execute("check_hold").ok);
  EXPECT_FALSE(session->execute("check_hold 1ns 2ns").ok);
  EXPECT_FALSE(session->execute("check_hold bogus").ok);
}

TEST(ServiceTest, CheckHoldDifferentialHoldsAfterWarmRestart) {
  namespace fs = std::filesystem;
  auto session = make_session();
  const std::vector<std::string> comb = cell_names(session->design(), 1, false);
  ASSERT_GE(comb.size(), 1u);
  EXPECT_TRUE(session->execute("set_delay " + comb[0] + " 120ps").ok);
  ASSERT_TRUE(session->execute("commit").ok);

  std::string tmpl = (fs::temp_directory_path() / "hbwarm.XXXXXX").string();
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  ASSERT_NE(::mkdtemp(buf.data()), nullptr);
  const std::string dir = buf.data();

  ServiceConfig cfg;
  cfg.snapshot_dir = dir;
  {
    ServiceHost host(cfg);
    host.adopt(session);  // persists the published snapshot retroactively
  }
  // A restarted host with no session answers the same differential-tested
  // check_hold replies from the persisted snapshot alone.
  ServiceHost restarted(cfg);
  ASSERT_NE(restarted.warm_source(), nullptr);
  ProtocolHandler h(restarted);
  for (const TimePs margin : {TimePs(0), ns(2), ns(8)}) {
    const std::string q = "check_hold " + std::to_string(margin);
    EXPECT_EQ(h.handle_line(q), to_wire(session->execute(q)));
  }
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(ServiceTest, ConcurrentReadersNeverSeeTornAnalysis) {
  auto session = make_session();
  const std::vector<std::string> comb = cell_names(session->design(), 8, false);
  ASSERT_GE(comb.size(), 8u);

  constexpr int kReaders = 8;
  constexpr int kIterations = 60;
  std::atomic<int> failures{0};
  std::atomic<bool> writer_done{false};

  auto reader = [&] {
    std::uint64_t last_id = 0;
    for (int i = 0; i < kIterations; ++i) {
      const QueryResult summary = session->execute("summary");
      if (!summary.ok) { ++failures; continue; }
      // Header: "ok summary snapshot <id> fields 6".
      std::istringstream is(summary.lines[0]);
      std::string okw, verb, snapw;
      std::uint64_t id = 0;
      is >> okw >> verb >> snapw >> id;
      if (id < last_id) ++failures;  // snapshots may only move forward
      last_id = id;
      if (!session->execute("worst_paths 5").ok) ++failures;
      if (!session->execute("histogram 8").ok) ++failures;
      if (!session->execute("summary").ok) ++failures;
    }
  };
  auto writer = [&] {
    for (std::size_t round = 0; round < 6; ++round) {
      if (!session->execute("set_delay " + comb[round % comb.size()] + " 35ps").ok) {
        ++failures;
      }
      if (!session->execute("commit").ok) ++failures;
    }
    writer_done = true;
  };

  std::vector<std::thread> threads;
  threads.emplace_back(writer);
  for (int i = 0; i < kReaders; ++i) threads.emplace_back(reader);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(writer_done.load());
  EXPECT_EQ(session->snapshot()->id, 7u);  // 1 initial + 6 commits
  EXPECT_TRUE(matches_fresh_analysis(*session));
}

TEST(ServiceTest, ConcurrentBatchesMatchSequentialExecution) {
  auto session = make_session();
  auto reference = make_session();
  const std::vector<std::string> comb = cell_names(session->design(), 1, false);
  // Any real timing-graph node; both sessions are built from the same seed,
  // so the name resolves identically in each.
  const std::string node =
      session->snapshot()->names->node_by_name.begin()->first;

  std::vector<std::string> lines = {
      "summary",
      "worst_paths 3",
      "histogram 4",
      "slack " + node,
      "set_delay " + comb[0] + " 120ps",
      "commit",
      "summary",
      "worst_paths 3",
  };
  const std::vector<QueryResult> batched = session->execute_batch(lines);
  ASSERT_EQ(batched.size(), lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const QueryResult serial = reference->execute(lines[i]);
    EXPECT_EQ(to_wire(batched[i]), to_wire(serial)) << "line " << i;
  }
  EXPECT_TRUE(matches_fresh_analysis(*session));
}

TEST(ServiceTest, ReadDeadlineTimeoutIsStructuredAndNonPoisoning) {
  auto session = make_session();
  ASSERT_TRUE(session->execute("deadline 0.000001").ok);  // 1 ns
  const QueryResult timed_out = session->execute("histogram 9");
  ASSERT_FALSE(timed_out.ok);
  EXPECT_TRUE(timed_out.timed_out());
  EXPECT_EQ(timed_out.code, DiagCode::kAnalysisBudget);
  EXPECT_EQ(timed_out.lines[0].rfind("err analysis-budget", 0), 0u);

  // Neither the session nor other queries are poisoned.
  ASSERT_TRUE(session->execute("deadline 0").ok);
  EXPECT_TRUE(session->execute("histogram 9").ok);
  EXPECT_TRUE(session->execute("summary").ok);
  EXPECT_GE(session->metrics().timeouts(), 1u);
  EXPECT_TRUE(matches_fresh_analysis(*session));
}

TEST(ServiceTest, TimedOutCommitRetainsEditsAndSnapshot) {
  auto session = make_session();
  const std::vector<std::string> comb = cell_names(session->design(), 1, false);
  ASSERT_TRUE(session->execute("set_delay " + comb[0] + " 500ps").ok);
  ASSERT_TRUE(session->execute("deadline 0.000001").ok);
  const QueryResult failed = session->execute("commit");
  ASSERT_FALSE(failed.ok);
  EXPECT_TRUE(failed.timed_out());
  EXPECT_EQ(session->snapshot()->id, 1u);  // nothing published
  EXPECT_EQ(session->pending_edits(), 1u);

  ASSERT_TRUE(session->execute("deadline 0").ok);
  const QueryResult ok = session->execute("commit");
  ASSERT_TRUE(ok.ok) << to_wire(ok);
  EXPECT_EQ(session->snapshot()->id, 2u);
  EXPECT_EQ(session->pending_edits(), 0u);
  EXPECT_TRUE(matches_fresh_analysis(*session));
}

TEST(ServiceTest, CacheHitsOnRepeatAndInvalidatesOnPublication) {
  auto session = make_session();
  const QueryResult first = session->execute("worst_paths 4");
  ASSERT_TRUE(first.ok);
  EXPECT_EQ(session->metrics().cache_hits(), 0u);
  const QueryResult second = session->execute("worst_paths 4");
  EXPECT_EQ(to_wire(first), to_wire(second));
  EXPECT_EQ(session->metrics().cache_hits(), 1u);

  // Canonicalisation: numerically equal spellings share the entry.
  session->execute("worst_paths 04");
  EXPECT_EQ(session->metrics().cache_hits(), 2u);

  // Publication invalidates wholesale: same query misses, new content key.
  const std::vector<std::string> comb = cell_names(session->design(), 1, false);
  ASSERT_TRUE(session->execute("set_delay " + comb[0] + " 90ps").ok);
  ASSERT_TRUE(session->execute("commit").ok);
  EXPECT_EQ(session->cache().size(), 0u);
  session->execute("worst_paths 4");
  EXPECT_EQ(session->metrics().cache_hits(), 2u);  // miss after publication
  EXPECT_EQ(session->metrics().cache_misses(), 2u);
}

TEST(ServiceTest, StructuredErrorsForBadQueries) {
  auto session = make_session();
  EXPECT_EQ(session->execute("slacc n1").code, DiagCode::kParseUnknownKeyword);
  EXPECT_EQ(session->execute("slack").code, DiagCode::kParseSyntax);
  EXPECT_EQ(session->execute("worst_paths nan").code, DiagCode::kParseBadNumber);
  EXPECT_EQ(session->execute("histogram 0").code, DiagCode::kParseBadNumber);
  EXPECT_EQ(session->execute("slack no_such.pin").code,
            DiagCode::kParseUnknownName);
  EXPECT_EQ(session->execute("set_delay ghost 1ns").code,
            DiagCode::kParseUnknownName);
  // Upsizing a sequential element has no stronger variant: rejected, not fatal.
  const std::vector<std::string> seq = cell_names(session->design(), 1, true);
  EXPECT_EQ(session->execute("upsize " + seq[0]).code,
            DiagCode::kServiceRejected);
  // Blank and comment lines produce no reply at all.
  EXPECT_TRUE(session->execute("").lines.empty());
  EXPECT_TRUE(session->execute("# comment").lines.empty());
  // The session still works.
  EXPECT_TRUE(session->execute("summary").ok);
}

TEST(ServiceTest, ProtocolHandlerBatchAndLifecycle) {
  ServiceHost host;
  host.adopt(make_session());
  ProtocolHandler handler(host);

  EXPECT_EQ(handler.handle_line(""), "");
  EXPECT_EQ(handler.handle_line("# comment"), "");
  EXPECT_EQ(handler.handle_line("ping"), "ok pong\n");

  // batch collects exactly N lines, then replies once.
  EXPECT_EQ(handler.handle_line("batch 2"), "");
  EXPECT_TRUE(handler.collecting());
  EXPECT_EQ(handler.handle_line("ping"), "");
  const std::string reply = handler.handle_line("summary");
  EXPECT_FALSE(handler.collecting());
  EXPECT_EQ(reply.rfind("ok batch 2\n", 0), 0u);
  EXPECT_NE(reply.find("ok pong"), std::string::npos);
  EXPECT_NE(reply.find("ok summary"), std::string::npos);

  const std::string help = handler.handle_line("help");
  EXPECT_EQ(help.rfind("ok help", 0), 0u);

  EXPECT_FALSE(handler.quit());
  EXPECT_EQ(handler.handle_line("quit"), "ok bye\n");
  EXPECT_TRUE(handler.quit());
}

TEST(ServiceTest, HostWithoutSessionRejectsQueries) {
  ServiceHost host;
  ProtocolHandler handler(host);
  const std::string reply = handler.handle_line("summary");
  EXPECT_EQ(reply.rfind("err service-rejected", 0), 0u);
  const std::string load = handler.handle_line("load missing.net missing.spec");
  EXPECT_EQ(load.rfind("err service-rejected", 0), 0u);
}

TEST(ServiceTest, ServeStreamCountsErrors) {
  ServiceHost host;
  host.adopt(make_session());
  std::istringstream in("ping\nbogus_verb\nsummary\nquit\n");
  std::ostringstream out;
  const int errors = serve_stream(host, in, out);
  EXPECT_EQ(errors, 1);
  EXPECT_NE(out.str().find("ok pong"), std::string::npos);
  EXPECT_NE(out.str().find("err parse-unknown-keyword"), std::string::npos);
  EXPECT_NE(out.str().find("ok bye"), std::string::npos);
}

TEST(ServiceTest, TcpServerServesTheLineProtocol) {
  ServiceHost host;
  host.adopt(make_session());
  std::unique_ptr<TcpServer> server;
  try {
    server = std::make_unique<TcpServer>(host, 0);
  } catch (const Error& e) {
    GTEST_SKIP() << "cannot bind loopback: " << e.what();
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server->port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);

  const std::string request = "ping\nsummary\nquit\n";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char chunk[1024];
  ssize_t n;
  while ((n = ::read(fd, chunk, sizeof chunk)) > 0) {
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("ok pong"), std::string::npos);
  EXPECT_NE(response.find("ok summary"), std::string::npos);
  EXPECT_NE(response.find("ok bye"), std::string::npos);
  server->stop();
}

TEST(ServiceTest, MetricsReflectTraffic) {
  auto session = make_session();
  session->execute("summary");
  session->execute("summary");
  session->execute("ping");
  session->execute("bogus");
  const ServiceMetrics& m = session->metrics();
  EXPECT_EQ(m.reads(), 2u);
  EXPECT_EQ(m.requests(), 4u);
  EXPECT_EQ(m.errors(), 1u);
  EXPECT_EQ(m.cache_hits(), 1u);
  EXPECT_EQ(m.cache_misses(), 1u);
  const QueryResult stats = session->execute("stats");
  ASSERT_TRUE(stats.ok);
  EXPECT_EQ(stats.lines.size(), 21u);  // header + 20 stat lines
}

}  // namespace
}  // namespace hb
