// The paper's headline claim: "the minimum number of settling times are
// evaluated for the nodes of combinational networks with input transitions
// controlled by different clock signals."  Versus a per-edge-attribution
// analyser (Wallace/Sequin, Szymanski — baseline/edge_trace), Hummingbird
// must never evaluate more settling times, and on configurations like the
// "disjoint" four-phase arrangement it evaluates strictly fewer.
#include <gtest/gtest.h>

#include "baseline/edge_trace.hpp"
#include "gen/fig1.hpp"
#include "gen/random_network.hpp"
#include "netlist/stdcells.hpp"
#include "sta/hummingbird.hpp"

namespace hb {
namespace {

// The defensible cluster-level claim (and the paper's): the number of
// analysis passes — hence settling times per node — never exceeds the
// number of distinct launch edges feeding the cluster, because breaking at
// every assertion edge always satisfies every ordering requirement.  A
// per-edge-attribution analyser evaluates one settling time per launch edge
// per reached node instead.
void expect_never_more(const Hummingbird& analyser) {
  const SlackEngine& engine = analyser.engine();
  const SyncModel& sync = engine.sync();
  const ClusterSet& clusters = engine.clusters();
  for (std::uint32_t c = 0; c < clusters.num_clusters(); ++c) {
    const Cluster& cl = clusters.cluster(ClusterId(c));
    std::vector<TimePs> edges;
    for (TNodeId src : cl.source_nodes) {
      for (SyncId li : sync.launches_at(src)) {
        edges.push_back(sync.at(li).ideal_assert);
      }
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    EXPECT_LE(engine.num_passes(ClusterId(c)), edges.size()) << "cluster " << c;
  }
}

TEST(SettlingTest, Fig1CrosswiseNeedsTwoEverywhereShared) {
  auto lib = make_standard_library();
  const Fig1Config cfg;  // the paper's crosswise arrangement
  const Design design = make_fig1_design(lib, cfg);
  const ClockSet clocks = make_fig1_clocks(cfg);
  Hummingbird analyser(design, clocks);
  analyser.analyze();

  const EdgeTraceResult per_edge = per_edge_settling_counts(analyser.engine());
  const TimingGraph& graph = analyser.graph();
  for (std::uint32_t n = 0; n < graph.num_nodes(); ++n) {
    if (graph.node_name(TNodeId(n)) == "shared.Y") {
      // Both analyses need two settling times here: genuinely multiplexed.
      EXPECT_EQ(analyser.engine().node_timing(TNodeId(n)).settling_count, 2);
      EXPECT_EQ(per_edge.settling_counts[n], 2);
    }
  }
  expect_never_more(analyser);
}

TEST(SettlingTest, DisjointPhasesNeedOnlyOnePass) {
  auto lib = make_standard_library();
  Fig1Config cfg;
  // Both launches precede both captures: phi1/phi3 launch at 0 and 8 ns,
  // phi2/phi4 capture at 24 and 30 ns.
  cfg.phase_start[0] = 0;
  cfg.phase_start[1] = ns(24);
  cfg.phase_start[2] = ns(8);
  cfg.phase_start[3] = ns(30);
  const Design design = make_fig1_design(lib, cfg);
  const ClockSet clocks = make_fig1_clocks(cfg);
  Hummingbird analyser(design, clocks);
  analyser.analyze();

  const EdgeTraceResult per_edge = per_edge_settling_counts(analyser.engine());
  const TimingGraph& graph = analyser.graph();
  bool strictly_fewer_somewhere = false;
  for (std::uint32_t n = 0; n < graph.num_nodes(); ++n) {
    const NodeTiming& nt = analyser.engine().node_timing(TNodeId(n));
    if (graph.node_name(TNodeId(n)) == "shared.Y") {
      // Two launch edges reach the shared gate, so per-edge attribution
      // evaluates two settling times; the broken-open period needs one.
      EXPECT_EQ(per_edge.settling_counts[n], 2);
      EXPECT_EQ(nt.settling_count, 1);
    }
    if (nt.has_ready && nt.settling_count < per_edge.settling_counts[n]) {
      strictly_fewer_somewhere = true;
    }
  }
  EXPECT_TRUE(strictly_fewer_somewhere);
  expect_never_more(analyser);
}

class SettlingRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SettlingRandomTest, NeverMoreThanPerEdgeAttribution) {
  auto lib = make_standard_library();
  RandomNetworkSpec spec;
  spec.seed = GetParam();
  spec.num_clocks = 2 + static_cast<int>(GetParam() % 3);
  spec.banks = 3;
  spec.bank_width = 4;
  spec.gates_per_stage = 14;
  const RandomNetwork net = make_random_network(lib, spec);
  Hummingbird analyser(net.design, net.clocks);
  analyser.analyze();
  expect_never_more(analyser);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SettlingRandomTest,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace hb
