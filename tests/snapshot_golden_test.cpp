// Snapshot-format drift detector (ci `snapshot-drift` job).
//
// Serialises a fully captured snapshot of every generator network and
// compares each section's checksum against tests/snapshots/checksums.golden.
// A mismatch means either the binary format changed (bump
// kSnapshotFormatVersion and regenerate) or the analysis results silently
// drifted (investigate — the timing contract broke).  Regenerate after
// intended changes with HB_UPDATE_GOLDENS=1.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "scenario/corner_analysis.hpp"
#include "service/snapshot_store.hpp"
#include "sta/hummingbird.hpp"
#include "test_util.hpp"

#ifndef HB_SNAPSHOT_GOLDEN
#define HB_SNAPSHOT_GOLDEN "tests/snapshots/checksums.golden"
#endif

namespace hb {
namespace {

// Deterministic three-corner set exercised by the golden so the `corners`
// section checksum guards per-corner slacks, paths and hold pairs too.
CornerSet golden_corners() {
  CornerSet cs;
  cs.add(Corner{"typical", kIdentityPm, kIdentityPm, {}});
  cs.add(Corner{"slow", 1250, 1300, {{"NAND2X1", 1400}}});
  cs.add(Corner{"fast", 800, 780, {}});
  return cs;
}

std::string current_checksum_table() {
  std::ostringstream out;
  for (Workload& w : all_generator_networks()) {
    Hummingbird hum(w.design, w.clocks);
    const Algorithm1Result res = hum.analyze();
    auto snap = take_snapshot(hum.engine(), res, /*id=*/1, /*max_paths=*/32,
                              build_name_index(hum.graph()));
    capture_hold_into(*snap, hum.engine());
    capture_constraints_into(*snap, hum);
    CornerAnalysis ca(hum.engine(), golden_corners());
    ca.compute();
    capture_corners_into(*snap, ca, /*max_paths=*/32, /*capture_hold=*/true);
    const SnapshotParse parsed = parse_snapshot(serialize_snapshot(*snap));
    EXPECT_TRUE(parsed.ok()) << w.name << ": " << parsed.error;
    for (const SnapshotSectionInfo& s : parsed.sections) {
      char line[160];
      std::snprintf(line, sizeof line, "%s %s %016llx %zu\n", w.name.c_str(),
                    snapshot_section_name(static_cast<SnapshotSection>(s.kind)),
                    static_cast<unsigned long long>(s.checksum),
                    s.payload_size);
      out << line;
    }
  }
  return out.str();
}

TEST(SnapshotGoldenTest, SectionChecksumsMatchGolden) {
  const std::string current = current_checksum_table();
  const std::string path = HB_SNAPSHOT_GOLDEN;
  if (std::getenv("HB_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << current;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing " << path
                  << "; run with HB_UPDATE_GOLDENS=1 to generate";
  const std::string golden((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
  EXPECT_EQ(current, golden)
      << "snapshot section checksums drifted; if the format or analysis "
         "changed intentionally, run with HB_UPDATE_GOLDENS=1 to regenerate";
}

}  // namespace
}  // namespace hb
