// Tests for the persistent snapshot store (src/service/snapshot_store).
//
// Three contracts under test:
//   1. Round-trip byte stability: serialising any snapshot, parsing it and
//      serialising the parse result yields identical bytes, on every
//      generator network.
//   2. Corruption never crashes and never mis-decodes: truncation at every
//      section boundary, a bit flip in every section, version skew and
//      arbitrary fuzz bytes all produce a structured rejection; the store
//      quarantines bad files, falls back to older generations and degrades
//      to a cold start when nothing valid remains, with the recovery
//      counters advancing exactly as documented in docs/ROBUSTNESS.md.
//   3. Warm restart byte-identity: a ServiceHost restarted over the same
//      snapshot directory answers read queries (slack, worst_paths,
//      check_hold, summary, gen_constraints, ...) byte-for-byte like the
//      host that persisted them, before any design is loaded.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "gen/random_network.hpp"
#include "netlist/stdcells.hpp"
#include "service/protocol.hpp"
#include "service/session.hpp"
#include "service/snapshot_store.hpp"
#include "sta/hummingbird.hpp"
#include "test_util.hpp"
#include "util/faultinject.hpp"

namespace hb {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl = (fs::temp_directory_path() / "hbsnap.XXXXXX").string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char* p = ::mkdtemp(buf.data());
    EXPECT_NE(p, nullptr);
    path = p != nullptr ? p : tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Analyse one workload and take a fully captured snapshot (hold pairs and
/// Algorithm 2 constraints included), exactly as a session publishes them.
std::shared_ptr<AnalysisSnapshot> snapshot_of(Hummingbird& hum,
                                              std::uint64_t id = 1) {
  const Algorithm1Result res = hum.analyze();
  auto snap = take_snapshot(hum.engine(), res, id, 32,
                            build_name_index(hum.graph()));
  capture_hold_into(*snap, hum.engine());
  capture_constraints_into(*snap, hum);
  return snap;
}

RandomNetworkSpec small_spec() {
  RandomNetworkSpec spec;
  spec.seed = 7;
  spec.num_clocks = 2;
  spec.banks = 4;
  spec.bank_width = 4;
  spec.gates_per_stage = 40;
  return spec;
}

std::shared_ptr<Session> make_session() {
  RandomNetwork net = make_random_network(make_standard_library(), small_spec());
  return std::make_shared<Session>(std::move(net.design), std::move(net.clocks));
}

// -- Serialisation ----------------------------------------------------------

TEST(SnapshotStoreTest, RoundTripByteStableOnEveryGeneratorNetwork) {
  for (Workload& w : all_generator_networks()) {
    SCOPED_TRACE(w.name);
    Hummingbird hum(w.design, w.clocks);
    const auto snap = snapshot_of(hum, 42);
    const std::string image = serialize_snapshot(*snap);

    const SnapshotParse parsed = parse_snapshot(image);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_EQ(parsed.version, kSnapshotFormatVersion);
    EXPECT_EQ(parsed.sections.size(), kNumSnapshotSections);
    EXPECT_EQ(serialize_snapshot(*parsed.snapshot), image);

    // Spot-check the decode against the source snapshot.
    const AnalysisSnapshot& d = *parsed.snapshot;
    EXPECT_EQ(d.id, snap->id);
    EXPECT_EQ(d.design_name, snap->design_name);
    EXPECT_EQ(d.worst_slack, snap->worst_slack);
    EXPECT_EQ(d.nodes.size(), snap->nodes.size());
    EXPECT_EQ(d.paths.size(), snap->paths.size());
    EXPECT_EQ(d.capture_slacks, snap->capture_slacks);
    ASSERT_TRUE(d.has_hold);
    ASSERT_EQ(d.hold_pairs.size(), snap->hold_pairs.size());
    for (std::size_t i = 0; i < d.hold_pairs.size(); ++i) {
      EXPECT_EQ(d.hold_pairs[i].margin, snap->hold_pairs[i].margin);
      EXPECT_EQ(d.hold_pairs[i].launch_label, snap->hold_pairs[i].launch_label);
    }
    ASSERT_TRUE(d.has_constraints);
    EXPECT_EQ(d.constraint_nodes.size(), snap->constraint_nodes.size());
    // Derived name tables are rebuilt, not serialised.
    ASSERT_NE(d.names, nullptr);
    EXPECT_EQ(d.names->node_names, snap->names->node_names);
    EXPECT_EQ(d.names->node_by_name.size(), snap->names->node_by_name.size());
    EXPECT_EQ(d.names->inst_pins.size(), snap->names->inst_pins.size());
  }
}

TEST(SnapshotStoreTest, RejectsTruncationAtEverySectionBoundary) {
  RandomNetwork net = make_random_network(make_standard_library(), small_spec());
  Hummingbird hum(net.design, net.clocks);
  const auto snap = snapshot_of(hum);
  const std::string image = serialize_snapshot(*snap);
  const SnapshotParse whole = parse_snapshot(image);
  ASSERT_TRUE(whole.ok());

  std::vector<std::size_t> cuts = {0, 1, 11};  // inside the file header
  for (const SnapshotSectionInfo& s : whole.sections) {
    cuts.push_back(s.header_offset);           // before the section frame
    cuts.push_back(s.payload_offset);          // header kept, payload gone
    cuts.push_back(s.payload_offset + s.payload_size / 2);  // mid-payload
    cuts.push_back(s.payload_offset + s.payload_size - 1);  // one byte short
  }
  for (const std::size_t cut : cuts) {
    SCOPED_TRACE("truncate at " + std::to_string(cut));
    ASSERT_LT(cut, image.size());
    const SnapshotParse p = parse_snapshot(std::string_view(image).substr(0, cut));
    EXPECT_FALSE(p.ok());
    EXPECT_EQ(p.code, DiagCode::kSnapshotCorrupt);
    EXPECT_FALSE(p.error.empty());
  }
}

TEST(SnapshotStoreTest, RejectsBitFlipInEverySection) {
  RandomNetwork net = make_random_network(make_standard_library(), small_spec());
  Hummingbird hum(net.design, net.clocks);
  const auto snap = snapshot_of(hum);
  const std::string image = serialize_snapshot(*snap);
  const SnapshotParse whole = parse_snapshot(image);
  ASSERT_TRUE(whole.ok());

  std::vector<std::size_t> targets = {0};  // magic byte
  for (const SnapshotSectionInfo& s : whole.sections) {
    targets.push_back(s.header_offset);      // kind field
    targets.push_back(s.header_offset + 12); // stored checksum
    if (s.payload_size > 0) {
      targets.push_back(s.payload_offset + s.payload_size / 2);
    }
  }
  for (const std::size_t at : targets) {
    SCOPED_TRACE("flip bit at byte " + std::to_string(at));
    std::string bad = image;
    bad[at] = static_cast<char>(bad[at] ^ 0x10);
    const SnapshotParse p = parse_snapshot(bad);
    EXPECT_FALSE(p.ok());
    EXPECT_EQ(p.code, DiagCode::kSnapshotCorrupt);
  }
}

TEST(SnapshotStoreTest, RejectsVersionSkewWithDedicatedCode) {
  RandomNetwork net = make_random_network(make_standard_library(), small_spec());
  Hummingbird hum(net.design, net.clocks);
  std::string image = serialize_snapshot(*snapshot_of(hum));
  image[4] = static_cast<char>(kSnapshotFormatVersion + 1);
  const SnapshotParse p = parse_snapshot(image);
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.code, DiagCode::kSnapshotVersionSkew);
  EXPECT_EQ(p.version, kSnapshotFormatVersion + 1);
}

// Named SnapshotFuzz* so the CI fuzz job's --gtest_filter picks them up.
TEST(SnapshotFuzzTest, ParserSafeOnArbitraryBytes) {
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  const auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int round = 0; round < 200; ++round) {
    std::string bytes(next() % 4096, '\0');
    for (char& c : bytes) c = static_cast<char>(next());
    // Half the rounds get a plausible header so parsing reaches the
    // section walk instead of bailing at the magic check.
    if (round % 2 == 0 && bytes.size() >= 12) {
      const std::uint32_t magic = kSnapshotMagic;
      const std::uint32_t version = kSnapshotFormatVersion;
      for (int i = 0; i < 4; ++i) {
        bytes[i] = static_cast<char>((magic >> (8 * i)) & 0xFF);
        bytes[4 + i] = static_cast<char>((version >> (8 * i)) & 0xFF);
      }
    }
    const SnapshotParse p = parse_snapshot(bytes);
    EXPECT_FALSE(p.ok());  // random bytes never checksum-validate
    EXPECT_FALSE(p.error.empty());
  }
}

TEST(SnapshotFuzzTest, ParserSafeOnMutatedValidImages) {
  RandomNetwork net = make_random_network(make_standard_library(), small_spec());
  Hummingbird hum(net.design, net.clocks);
  const std::string image = serialize_snapshot(*snapshot_of(hum));
  std::uint64_t state = 0xD1B54A32D192ED03ull;
  const auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int round = 0; round < 200; ++round) {
    std::string bad = image;
    const int edits = 1 + static_cast<int>(next() % 4);
    for (int e = 0; e < edits; ++e) {
      bad[next() % bad.size()] = static_cast<char>(next());
    }
    if (next() % 4 == 0) bad.resize(next() % (bad.size() + 1));
    const SnapshotParse p = parse_snapshot(bad);  // must not crash
    if (!p.ok()) EXPECT_FALSE(p.error.empty());
  }
}

// -- The store --------------------------------------------------------------

TEST(SnapshotStoreTest, SaveLoadRoundTripThroughDisk) {
  TempDir dir;
  RandomNetwork net = make_random_network(make_standard_library(), small_spec());
  Hummingbird hum(net.design, net.clocks);
  const auto snap = snapshot_of(hum, 7);

  SnapshotStore store({dir.path, 4});
  const SnapshotStore::SaveResult saved = store.save(*snap);
  ASSERT_TRUE(saved.ok) << saved.error;
  EXPECT_EQ(saved.generation, 1u);
  EXPECT_TRUE(fs::exists(saved.path));
  EXPECT_EQ(read_file(saved.path), serialize_snapshot(*snap));

  const SnapshotStore::LoadResult loaded = store.load_newest();
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_EQ(loaded.generation, 1u);
  EXPECT_EQ(loaded.rejected, 0u);
  EXPECT_EQ(loaded.design, snap->design_name);
  EXPECT_EQ(serialize_snapshot(*loaded.snapshot), serialize_snapshot(*snap));
  EXPECT_EQ(store.saves(), 1u);
  EXPECT_EQ(store.loads(), 1u);
  EXPECT_EQ(store.snapshots_rejected(), 0u);
  EXPECT_EQ(store.self_heals(), 0u);

  // A second store over the same directory continues the generation chain.
  SnapshotStore reopened({dir.path, 4});
  const SnapshotStore::SaveResult again = reopened.save(*snap);
  ASSERT_TRUE(again.ok);
  EXPECT_EQ(again.generation, 2u);
}

TEST(SnapshotStoreTest, RetentionDeletesOldestGenerations) {
  TempDir dir;
  RandomNetwork net = make_random_network(make_standard_library(), small_spec());
  Hummingbird hum(net.design, net.clocks);
  const auto snap = snapshot_of(hum);

  SnapshotStore store({dir.path, 3});
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(store.save(*snap).ok);
  EXPECT_EQ(store.generations(snap->design_name),
            (std::vector<std::uint64_t>{3, 4, 5}));
  EXPECT_EQ(store.designs(), std::vector<std::string>{snap->design_name});
}

TEST(SnapshotStoreTest, QuarantinesCorruptNewestAndFallsBackToOlder) {
  TempDir dir;
  RandomNetwork net = make_random_network(make_standard_library(), small_spec());
  Hummingbird hum(net.design, net.clocks);
  const auto snap = snapshot_of(hum);

  SnapshotStore store({dir.path, 4});
  ASSERT_TRUE(store.save(*snap).ok);
  const SnapshotStore::SaveResult newest = store.save(*snap);
  ASSERT_TRUE(newest.ok);

  std::string bytes = read_file(newest.path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  write_file(newest.path, bytes);

  const SnapshotStore::LoadResult loaded = store.load_newest();
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_EQ(loaded.generation, 1u);  // healed by falling back
  EXPECT_EQ(loaded.rejected, 1u);
  EXPECT_EQ(store.snapshots_rejected(), 1u);
  EXPECT_EQ(store.self_heals(), 1u);
  EXPECT_TRUE(fs::exists(newest.path + ".quarantined"));
  EXPECT_FALSE(fs::exists(newest.path));

  // The quarantined file is never retried: the next load is clean.
  const SnapshotStore::LoadResult again = store.load_newest();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.rejected, 0u);
  EXPECT_EQ(store.self_heals(), 1u);
}

TEST(SnapshotStoreTest, DegradesToColdStartWhenEveryGenerationIsCorrupt) {
  TempDir dir;
  RandomNetwork net = make_random_network(make_standard_library(), small_spec());
  Hummingbird hum(net.design, net.clocks);
  const auto snap = snapshot_of(hum);

  SnapshotStore store({dir.path, 4});
  std::vector<std::string> paths;
  for (int i = 0; i < 3; ++i) {
    const SnapshotStore::SaveResult r = store.save(*snap);
    ASSERT_TRUE(r.ok);
    paths.push_back(r.path);
  }
  for (const std::string& p : paths) {
    std::string bytes = read_file(p);
    bytes.resize(bytes.size() / 3);
    write_file(p, bytes);
  }

  const SnapshotStore::LoadResult loaded = store.load_newest();
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.rejected, 3u);
  EXPECT_EQ(loaded.code, DiagCode::kSnapshotCorrupt);
  EXPECT_EQ(store.snapshots_rejected(), 3u);
  EXPECT_EQ(store.self_heals(), 1u);

  // Cold start: the store is usable again immediately.
  ASSERT_TRUE(store.save(*snap).ok);
  EXPECT_TRUE(store.load_newest().ok());
}

TEST(SnapshotStoreTest, MissingStoreReportsStructuredCode) {
  TempDir dir;
  SnapshotStore store({dir.path, 4});
  const SnapshotStore::LoadResult r = store.load_newest();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.code, DiagCode::kSnapshotMissing);
  const SnapshotStore::LoadResult named = store.load_newest("nope");
  EXPECT_FALSE(named.ok());
  EXPECT_EQ(named.code, DiagCode::kSnapshotMissing);
}

TEST(SnapshotStoreTest, FaultInjectionMatrixDegradesGracefully) {
  RandomNetwork net = make_random_network(make_standard_library(), small_spec());
  Hummingbird hum(net.design, net.clocks);
  const auto snap = snapshot_of(hum);

  const FaultSite sites[] = {FaultSite::kSnapshotShortWrite,
                             FaultSite::kSnapshotBitFlip,
                             FaultSite::kSnapshotStaleVersion};
  for (const FaultSite site : sites) {
    SCOPED_TRACE("site " + std::to_string(static_cast<int>(site)));
    TempDir dir;
    SnapshotStore store({dir.path, 4});
    ASSERT_TRUE(store.save(*snap).ok);  // one clean generation to heal onto

    {
      FaultInjector::Config cfg;
      cfg.seed = 11;
      cfg.probability[static_cast<int>(site)] = 1.0;
      FaultInjector::Scope scope(cfg);
      const SnapshotStore::SaveResult r = store.save(*snap);
      ASSERT_TRUE(r.ok) << r.error;  // the corruption is silent, as on real media
    }

    const SnapshotStore::LoadResult loaded = store.load_newest();
    ASSERT_TRUE(loaded.ok()) << loaded.error;
    EXPECT_EQ(loaded.generation, 1u);
    EXPECT_EQ(loaded.rejected, 1u);
    EXPECT_EQ(store.snapshots_rejected(), 1u);
    EXPECT_EQ(store.self_heals(), 1u);
    if (site == FaultSite::kSnapshotStaleVersion) {
      // The quarantined file must have been rejected as version skew, so
      // a second all-corrupt load reports the dedicated code.
      TempDir dir2;
      SnapshotStore store2({dir2.path, 4});
      FaultInjector::Config cfg;
      cfg.seed = 11;
      cfg.probability[static_cast<int>(site)] = 1.0;
      FaultInjector::Scope scope(cfg);
      ASSERT_TRUE(store2.save(*snap).ok);
      const SnapshotStore::LoadResult skew = store2.load_newest();
      EXPECT_FALSE(skew.ok());
      EXPECT_EQ(skew.code, DiagCode::kSnapshotVersionSkew);
    }
  }
}

// -- Warm restart -----------------------------------------------------------

TEST(SnapshotStoreTest, WarmRestartedHostAnswersReadsByteIdentically) {
  TempDir dir;
  ServiceConfig cfg;
  cfg.snapshot_dir = dir.path;

  std::vector<std::string> queries = {"summary", "worst_paths 5",
                                      "histogram 4", "check_hold",
                                      "check_hold 5ns", "gen_constraints"};
  std::vector<std::string> before;
  {
    ServiceHost host(cfg);
    EXPECT_EQ(host.warm_source(), nullptr);  // empty store: cold start
    auto session = make_session();
    // A slack query on a real node, chosen from the published name index.
    queries.push_back("slack " + session->snapshot()->names->node_names.front());
    host.adopt(std::move(session));  // wires the store; saves snapshot 1
    ProtocolHandler h(host);
    for (const std::string& q : queries) before.push_back(h.handle_line(q));
  }

  // "Restart": a fresh host over the same directory, no design loaded.
  ServiceHost host(cfg);
  const auto warm = host.warm_source();
  ASSERT_NE(warm, nullptr);
  EXPECT_EQ(warm->id(), 1u);
  ProtocolHandler h(host);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    SCOPED_TRACE(queries[i]);
    EXPECT_EQ(h.handle_line(queries[i]), before[i]);
  }
  // Writes are rejected with a structured reply, not a crash.
  const std::string write = h.handle_line("set_delay x 10ps");
  EXPECT_EQ(write.rfind("err service-rejected", 0), 0u) << write;
  EXPECT_NE(write.find("read-only"), std::string::npos);
}

TEST(SnapshotStoreTest, WarmRestartSurvivesCorruptNewestGeneration) {
  TempDir dir;
  ServiceConfig cfg;
  cfg.snapshot_dir = dir.path;
  std::string summary_before;
  {
    ServiceHost host(cfg);
    host.adopt(make_session());
    ProtocolHandler h(host);
    summary_before = h.handle_line("summary");
    // A second generation, then corrupt it on disk.
    ASSERT_EQ(h.handle_line("snapshot save").rfind("ok snapshot save", 0), 0u);
  }
  const std::vector<std::string> designs =
      SnapshotStore({dir.path, 4}).designs();
  ASSERT_EQ(designs.size(), 1u);
  SnapshotStore probe({dir.path, 4});
  const std::vector<std::uint64_t> gens = probe.generations(designs[0]);
  ASSERT_EQ(gens.size(), 2u);
  const std::string newest = dir.path + "/" + designs[0] + "." +
                             std::to_string(gens.back()) + ".hbss";
  std::string bytes = read_file(newest);
  ASSERT_FALSE(bytes.empty());
  bytes[20] = static_cast<char>(bytes[20] ^ 0x40);
  write_file(newest, bytes);

  ServiceHost host(cfg);
  ASSERT_NE(host.warm_source(), nullptr);  // healed onto generation 1
  ProtocolHandler h(host);
  EXPECT_EQ(h.handle_line("summary"), summary_before);
  EXPECT_TRUE(fs::exists(newest + ".quarantined"));

  // The warm-load recovery counters land in the first adopted session.
  auto session = make_session();
  host.adopt(session);
  EXPECT_EQ(session->metrics().snapshots_loaded(), 1u);
  EXPECT_EQ(session->metrics().snapshots_rejected(), 1u);
  EXPECT_EQ(session->metrics().snapshot_self_heals(), 1u);
}

TEST(SnapshotStoreTest, SnapshotVerbsRoundTrip) {
  TempDir dir;
  ServiceConfig cfg;
  cfg.snapshot_dir = dir.path;
  ServiceHost host(cfg);
  ProtocolHandler h(host);

  // Before any session: save has nothing to persist, stat still works.
  EXPECT_EQ(h.handle_line("snapshot save").rfind("err service-rejected", 0), 0u);
  EXPECT_EQ(h.handle_line("snapshot stat").rfind("ok snapshot stat", 0), 0u);
  EXPECT_EQ(h.handle_line("snapshot load").rfind("err snapshot-missing", 0), 0u);

  host.adopt(make_session());
  const std::string saved = h.handle_line("snapshot save");
  EXPECT_EQ(saved.rfind("ok snapshot save", 0), 0u) << saved;
  const std::string loaded = h.handle_line("snapshot load");
  EXPECT_EQ(loaded.rfind("ok snapshot load", 0), 0u) << loaded;
  const std::string stat = h.handle_line("snapshot stat");
  EXPECT_NE(stat.find("store saves 2"), std::string::npos) << stat;
  EXPECT_NE(stat.find("store snapshots_rejected 0"), std::string::npos);

  // Hosts without a store reject the verb with a structured reply.
  ServiceHost bare;
  ProtocolHandler hb2(bare);
  EXPECT_EQ(hb2.handle_line("snapshot stat").rfind("err service-rejected", 0),
            0u);
}

}  // namespace
}  // namespace hb
