#include <gtest/gtest.h>

#include "delay/calculator.hpp"
#include "gen/random_network.hpp"
#include "netlist/builder.hpp"
#include "netlist/stdcells.hpp"
#include "sta/algorithm1.hpp"
#include "sta/cluster.hpp"
#include "sta/sync_model.hpp"
#include "synth/resize.hpp"
#include "util/rng.hpp"

namespace hb {
namespace {

// ---------------------------------------------------------------------------
// Offset arithmetic of the generic element (paper Figure 3).

// The paper's worked example: a transparent latch with no internal delays,
// controlled by a 20 ns pulse, output asserted 5 ns after the pulse begins:
// O_zd = 5 ns, O_dz = -15 ns; with a 2 ns control path delay,
// O_ac = O_zc = 2 ns.
TEST(SyncInstanceTest, PaperFigure3Example) {
  SyncInstance si;
  si.transparent = true;
  si.width = ns(20);
  si.ddz = 0;
  si.dcz = 0;
  si.setup = 0;
  si.oac = ns(2);
  si.odz = ns(-15);
  si.ozd = si.width + si.odz + si.ddz;
  EXPECT_EQ(si.ozd, ns(5));
  // O_zc = O_ac + D_cz = 2 ns; output assertion = max(O_zc, O_zd) = 5 ns.
  EXPECT_EQ(si.assert_offset(), ns(5));
  // Input closure = min(O_dc, O_dz) = min(0, -15 ns) = -15 ns.
  EXPECT_EQ(si.close_offset(), ns(-15));
}

TEST(SyncInstanceTest, EdgeTriggeredOffsetsArePinned) {
  SyncInstance si;
  si.transparent = false;
  si.setup = 65;
  si.dcz = 100;
  si.oac = 7;
  si.odz = 0;
  si.ozd = 0;
  EXPECT_EQ(si.assert_offset(), 107);  // O_ac + D_cz
  EXPECT_EQ(si.close_offset(), -65);   // -D_setup
  EXPECT_EQ(si.max_decrease(), 0);
  EXPECT_EQ(si.max_increase(), 0);
}

TEST(SyncInstanceTest, TransferBoundsAndShift) {
  SyncInstance si;
  si.transparent = true;
  si.width = 1000;
  si.ddz = 80;
  si.setup = 50;
  si.odz = -80;  // end-of-pulse state
  si.ozd = 1000;
  EXPECT_EQ(si.max_decrease(), 1000);  // down to O_zd = 0
  EXPECT_EQ(si.max_increase(), 0);     // O_dz at its -D_dz bound already

  si.shift(-400);
  EXPECT_EQ(si.odz, -480);
  EXPECT_EQ(si.ozd, 600);
  EXPECT_EQ(si.max_decrease(), 600);
  EXPECT_EQ(si.max_increase(), 400);
  // O_zd = W + O_dz + D_dz stays consistent under shifts.
  EXPECT_EQ(si.ozd, si.width + si.odz + si.ddz);
}

TEST(SyncInstanceTest, ControlLimitedAssertion) {
  // When the control arrives late, output assertion is control-limited and
  // further forward shifts stop helping downstream.
  SyncInstance si;
  si.transparent = true;
  si.width = 1000;
  si.ddz = 0;
  si.oac = 300;
  si.dcz = 50;
  si.odz = -900;
  si.ozd = 100;
  EXPECT_EQ(si.assert_offset(), 350);  // max(300+50, 100)
}

// ---------------------------------------------------------------------------
// Model construction over real designs.

class SyncModelTest : public ::testing::Test {
 protected:
  std::shared_ptr<const Library> lib_ = make_standard_library();

  struct Built {
    Design design;
    ClockSet clocks;
    std::unique_ptr<DelayCalculator> calc;
    std::unique_ptr<TimingGraph> graph;
    std::unique_ptr<SyncModel> sync;
  };

  Built build(Design design, ClockSet clocks, SyncModelOptions opts = {}) {
    Built b{std::move(design), std::move(clocks), nullptr, nullptr, nullptr};
    b.calc = std::make_unique<DelayCalculator>(b.design);
    b.graph = std::make_unique<TimingGraph>(b.design, *b.calc);
    b.sync = std::make_unique<SyncModel>(*b.graph, b.clocks, *b.calc, opts);
    return b;
  }

  const SyncInstance& find(const SyncModel& sync, const std::string& label) {
    for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
      if (sync.at(SyncId(i)).label == label) return sync.at(SyncId(i));
    }
    ADD_FAILURE() << "no instance labelled " << label;
    static SyncInstance dummy;
    return dummy;
  }
};

TEST_F(SyncModelTest, TransparentLatchIdealTimesFollowThePulse) {
  TopBuilder b("t", lib_);
  const NetId clk = b.port_in("clk", true);
  const NetId d = b.port_in("d");
  b.port_out_net("q", b.latch("TLATCH", d, clk, "lat"));
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(20), ns(3), ns(11));
  auto built = build(b.finish(), std::move(clocks));

  const SyncInstance& si = find(*built.sync, "lat#0");
  EXPECT_TRUE(si.transparent);
  EXPECT_EQ(si.ideal_assert, ns(3));   // leading edge asserts
  EXPECT_EQ(si.ideal_close, ns(11));   // trailing edge closes
  EXPECT_EQ(si.width, ns(8));
  // End-of-pulse initial offsets.
  EXPECT_EQ(si.odz, -si.ddz);
  EXPECT_EQ(si.ozd, si.width);
}

TEST_F(SyncModelTest, ActiveLowLatchUsesLowInterval) {
  TopBuilder b("t", lib_);
  const NetId clk = b.port_in("clk", true);
  const NetId d = b.port_in("d");
  b.port_out_net("q", b.latch("TLATCHN", d, clk, "lat"));
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(20), ns(3), ns(11));
  auto built = build(b.finish(), std::move(clocks));

  const SyncInstance& si = find(*built.sync, "lat#0");
  EXPECT_EQ(si.ideal_assert, ns(11));  // low interval starts at the fall
  EXPECT_EQ(si.ideal_close, ns(3));    // and wraps to the next rise
  EXPECT_EQ(si.width, ns(12));
}

TEST_F(SyncModelTest, InvertedControlFlipsTheInterval) {
  TopBuilder b("t", lib_);
  const NetId clk = b.port_in("clk", true);
  const NetId nclk = b.gate("INVX1", {clk});
  const NetId d = b.port_in("d");
  b.port_out_net("q", b.latch("TLATCH", d, nclk, "lat"));
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(20), ns(3), ns(11));
  auto built = build(b.finish(), std::move(clocks));

  const SyncInstance& si = find(*built.sync, "lat#0");
  // Active-high latch on inverted clock == enabled while the clock is low.
  EXPECT_EQ(si.ideal_assert, ns(11));
  EXPECT_EQ(si.ideal_close, ns(3));
  // The inverter contributes control path delay: O_ac > 0.
  EXPECT_GT(si.oac, 0);
}

TEST_F(SyncModelTest, TrailingEdgeTriggeredUsesTrailingEdge) {
  TopBuilder b("t", lib_);
  const NetId clk = b.port_in("clk", true);
  const NetId d = b.port_in("d");
  b.port_out_net("q", b.latch("DFFT", d, clk, "ff"));
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(20), ns(3), ns(11));
  auto built = build(b.finish(), std::move(clocks));

  const SyncInstance& si = find(*built.sync, "ff#0");
  EXPECT_FALSE(si.transparent);
  EXPECT_EQ(si.ideal_assert, ns(11));
  EXPECT_EQ(si.ideal_close, ns(11));
  EXPECT_EQ(si.max_decrease(), 0);
}

TEST_F(SyncModelTest, LeadingEdgeTriggeredUsesLeadingEdge) {
  TopBuilder b("t", lib_);
  const NetId clk = b.port_in("clk", true);
  const NetId d = b.port_in("d");
  b.port_out_net("q", b.latch("DFFL", d, clk, "ff"));
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(20), ns(3), ns(11));
  auto built = build(b.finish(), std::move(clocks));

  const SyncInstance& si = find(*built.sync, "ff#0");
  EXPECT_EQ(si.ideal_assert, ns(3));
  EXPECT_EQ(si.ideal_close, ns(3));
}

TEST_F(SyncModelTest, DoubleRateClockYieldsTwoInstances) {
  TopBuilder b("t", lib_);
  const NetId fast = b.port_in("fast", true);
  const NetId slow = b.port_in("slow", true);
  const NetId d = b.port_in("d");
  const NetId q1 = b.latch("DFFT", d, fast, "ff_fast");
  b.port_out_net("q1", q1);
  const NetId q2 = b.latch("DFFT", d, slow, "ff_slow");
  b.port_out_net("q2", q2);
  ClockSet clocks;
  clocks.add_simple_clock("fast", ns(10), 0, ns(4));
  clocks.add_simple_clock("slow", ns(20), 0, ns(8));
  auto built = build(b.finish(), std::move(clocks));

  EXPECT_EQ(built.sync->overall_period(), ns(20));
  const SyncInstance& p0 = find(*built.sync, "ff_fast#0");
  const SyncInstance& p1 = find(*built.sync, "ff_fast#1");
  EXPECT_EQ(p0.ideal_close, ns(4));
  EXPECT_EQ(p1.ideal_close, ns(14));
  // Both instances share the same data pins.
  EXPECT_EQ(p0.data_in, p1.data_in);
  EXPECT_EQ(built.sync->captures_at(p0.data_in).size(), 2u);
}

TEST_F(SyncModelTest, ControlPathDelayBecomesOac) {
  TopBuilder b("t", lib_);
  const NetId clk = b.port_in("clk", true);
  const NetId buffered = b.gate("CLKBUF", {clk});
  const NetId d = b.port_in("d");
  b.port_out_net("q", b.latch("DFFT", d, buffered, "ff"));
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(20), 0, ns(8));
  auto built = build(b.finish(), std::move(clocks));

  const SyncInstance& si = find(*built.sync, "ff#0");
  EXPECT_GT(si.oac, ns(0));  // CLKBUF delay
  const auto& info = built.sync->control_of(si.inst);
  EXPECT_EQ(info.polarity, +1);
  EXPECT_EQ(info.delay, si.oac);
}

TEST_F(SyncModelTest, PortInstancesCreatedByDefault) {
  TopBuilder b("t", lib_);
  const NetId clk = b.port_in("clk", true);
  const NetId d = b.port_in("d");
  b.port_out_net("q", b.latch("DFFT", d, clk, "ff"));
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(20), 0, ns(8));
  auto built = build(b.finish(), std::move(clocks));

  const SyncInstance& pi = find(*built.sync, "in:d");
  EXPECT_TRUE(pi.is_virtual);
  EXPECT_TRUE(pi.data_out.valid());
  EXPECT_FALSE(pi.data_in.valid());
  const SyncInstance& po = find(*built.sync, "out:q");
  EXPECT_TRUE(po.data_in.valid());
}

TEST_F(SyncModelTest, PortSpecsOverrideDefaults) {
  TopBuilder b("t", lib_);
  const NetId clk = b.port_in("clk", true);
  const NetId d = b.port_in("d");
  b.port_out_net("q", b.latch("DFFT", d, clk, "ff"));
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(20), 0, ns(8));
  SyncModelOptions opts;
  opts.input_arrivals.push_back({"d", ns(3), ns(1)});
  opts.output_requireds.push_back({"q", ns(18), ns(-2)});
  auto built = build(b.finish(), std::move(clocks), opts);

  const SyncInstance& pi = find(*built.sync, "in:d");
  EXPECT_EQ(pi.ideal_assert, ns(3));
  EXPECT_EQ(pi.assert_offset(), ns(1));
  const SyncInstance& po = find(*built.sync, "out:q");
  EXPECT_EQ(po.ideal_close, ns(18));
  EXPECT_EQ(po.close_offset(), ns(-2));
}

TEST_F(SyncModelTest, EnableSinkCreatedForGatedControl) {
  TopBuilder b("t", lib_);
  const NetId clk = b.port_in("clk", true);
  const NetId d = b.port_in("d");
  const NetId en_q = b.latch("DFFT", b.port_in("en"), clk, "en_ff");
  const NetId gated = b.gate("AND2X1", {clk, en_q});
  b.port_out_net("q", b.latch("TLATCH", d, gated, "lat"));
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(20), ns(2), ns(10));
  auto built = build(b.finish(), std::move(clocks));

  const SyncInstance& en = find(*built.sync, "enable:lat#0");
  EXPECT_TRUE(en.is_virtual);
  EXPECT_EQ(en.ideal_close, ns(2));  // enable must settle by the leading edge
  // The plain (ungated) en_ff control pin gets no enable sink.
  for (std::uint32_t i = 0; i < built.sync->num_instances(); ++i) {
    EXPECT_NE(built.sync->at(SyncId(i)).label, "enable:en_ff#0");
  }
}

TEST_F(SyncModelTest, ResetRestoresEndOfPulseState) {
  TopBuilder b("t", lib_);
  const NetId clk = b.port_in("clk", true);
  const NetId d = b.port_in("d");
  b.port_out_net("q", b.latch("TLATCH", d, clk, "lat"));
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(20), 0, ns(8));
  auto built = build(b.finish(), std::move(clocks));

  SyncModel& sync = *built.sync;
  for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
    SyncInstance& si = sync.at_mut(SyncId(i));
    if (si.transparent) si.shift(-100);
  }
  sync.reset_offsets();
  const SyncInstance& si = find(sync, "lat#0");
  EXPECT_EQ(si.odz, -si.ddz);
  EXPECT_EQ(si.ozd, si.width);
}

// ---------------------------------------------------------------------------
// Randomized model invariants (paper Section 5).
//
// For every transparent generic instance, after ANY sequence of legal
// transfers the adjustable pair must satisfy
//     O_zd = W + O_dz + D_dz   (the transparent-latch coupling),
//     O_zd >= 0                (assertion not before the leading edge),
//     O_dz <= -D_dz            (closure leaves room for the data delay),
// and edge-triggered instances must stay pinned at O_dz = O_zd = 0.

void expect_invariants(const SyncModel& sync) {
  for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
    const SyncInstance& si = sync.at(SyncId(i));
    if (si.is_virtual) continue;
    if (si.transparent) {
      ASSERT_EQ(si.ozd, si.width + si.odz + si.ddz) << si.label;
      ASSERT_GE(si.ozd, 0) << si.label;
      ASSERT_LE(si.odz, -si.ddz) << si.label;
    } else {
      ASSERT_EQ(si.odz, 0) << si.label;
      ASSERT_EQ(si.ozd, 0) << si.label;
    }
  }
}

class SyncModelPropertyTest : public ::testing::Test {
 protected:
  std::shared_ptr<const Library> lib_ = make_standard_library();
};

TEST_F(SyncModelPropertyTest, InvariantsHoldUnderRandomTransferSequences) {
  for (int net_i = 0; net_i < 20; ++net_i) {
    SCOPED_TRACE("network " + std::to_string(net_i));
    RandomNetworkSpec spec;
    spec.seed = 4000 + static_cast<std::uint64_t>(net_i);
    spec.num_clocks = 1 + net_i % 3;
    spec.banks = 2 + net_i % 3;
    spec.transparent_prob = 0.8;
    RandomNetwork net = make_random_network(lib_, spec);
    DelayCalculator calc(net.design);
    TimingGraph graph(net.design, calc);
    SyncModel sync(graph, net.clocks, calc);
    expect_invariants(sync);

    Rng rng(5000 + static_cast<std::uint64_t>(net_i));
    for (int step = 0; step < 200; ++step) {
      const SyncId id(static_cast<std::uint32_t>(rng.pick(sync.num_instances())));
      const SyncInstance& si = sync.at(id);
      if (si.is_virtual || !si.transparent) continue;
      // A legal transfer never exceeds the element bounds, like the
      // algorithm's sweeps: forward up to max_decrease, backward up to
      // max_increase.
      const TimePs delta = rng.chance(0.5)
                               ? -rng.uniform(0, si.max_decrease())
                               : rng.uniform(0, si.max_increase());
      if (delta != 0) sync.at_mut(id).shift(delta);
      expect_invariants(sync);
    }
    sync.reset_offsets();
    expect_invariants(sync);
  }
}

TEST_F(SyncModelPropertyTest, InvariantsHoldAfterAlgorithm1) {
  for (int net_i = 0; net_i < 10; ++net_i) {
    SCOPED_TRACE("network " + std::to_string(net_i));
    RandomNetworkSpec spec;
    spec.seed = 8000 + static_cast<std::uint64_t>(net_i);
    spec.num_clocks = 1 + net_i % 2;
    RandomNetwork net = make_random_network(lib_, spec);
    DelayCalculator calc(net.design);
    TimingGraph graph(net.design, calc);
    SyncModel sync(graph, net.clocks, calc);
    ClusterSet clusters(graph, sync);
    SlackEngine engine(graph, clusters, sync);
    run_algorithm1(sync, engine);
    expect_invariants(sync);
  }
}

// The change log feeding incremental re-analysis: at_mut records
// conservatively and dedups; draining empties the log; reset_offsets records
// only instances whose offsets actually move.
TEST_F(SyncModelPropertyTest, ChangeLogTracksMutationsExactly) {
  RandomNetworkSpec spec;
  spec.seed = 42;
  RandomNetwork net = make_random_network(lib_, spec);
  DelayCalculator calc(net.design);
  TimingGraph graph(net.design, calc);
  SyncModel sync(graph, net.clocks, calc);

  // Construction leaves a clean log.
  EXPECT_TRUE(sync.changed_offsets().empty());

  // at_mut records, deduplicated, in first-touch order.
  sync.at_mut(SyncId(3));
  sync.at_mut(SyncId(1));
  sync.at_mut(SyncId(3));
  ASSERT_EQ(sync.changed_offsets().size(), 2u);
  EXPECT_EQ(sync.changed_offsets()[0], SyncId(3));
  EXPECT_EQ(sync.changed_offsets()[1], SyncId(1));

  // Draining empties the log and returns it.
  const std::vector<SyncId> drained = sync.drain_changed_offsets();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_TRUE(sync.changed_offsets().empty());

  // A reset that moves nothing records nothing...
  sync.reset_offsets();
  EXPECT_TRUE(sync.changed_offsets().empty());

  // ...and one that moves some transparent instances records exactly those.
  std::vector<std::uint32_t> shifted;
  for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
    const SyncInstance& si = sync.at(SyncId(i));
    if (si.transparent && !si.is_virtual && si.max_decrease() >= 10) {
      sync.at_mut(SyncId(i)).shift(-10);
      shifted.push_back(i);
    }
  }
  ASSERT_FALSE(shifted.empty());
  sync.drain_changed_offsets();
  sync.reset_offsets();
  std::vector<std::uint32_t> recorded;
  for (SyncId id : sync.changed_offsets()) recorded.push_back(id.index());
  std::sort(recorded.begin(), recorded.end());
  EXPECT_EQ(recorded, shifted);
}

TEST_F(SyncModelPropertyTest, RefreshElementDelaysPreservesCoupling) {
  // A latch driving fanout that then gets heavier: D_cz/D_dz must re-derive
  // and the O_zd coupling must be preserved with O_dz kept.
  TopBuilder b("t", lib_);
  const NetId clk = b.port_in("clk", true);
  const NetId d = b.port_in("d");
  const NetId q = b.latch("TLATCH", d, clk, "lat");
  b.port_out_net("y", b.gate("INVX1", {q}, "load"));
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(20), 0, ns(8));
  Design design = b.finish();
  DelayCalculator calc(design);
  TimingGraph graph(design, calc);
  SyncModel sync(graph, clocks, calc);

  SyncId lat = SyncId::invalid();
  for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
    if (sync.at(SyncId(i)).label == "lat#0") lat = SyncId(i);
  }
  ASSERT_TRUE(lat.valid());
  const SyncInstance before = sync.at(lat);
  sync.drain_changed_offsets();

  // Make the latch's output load heavier, then refresh.
  const InstId latch_inst = design.top().find_inst("lat");
  ASSERT_TRUE(upsize_instance(design, design.top().find_inst("load")));
  sync.refresh_element_delays(latch_inst, calc);

  const SyncInstance& after = sync.at(lat);
  EXPECT_GT(after.dcz, before.dcz);
  EXPECT_EQ(after.odz, before.odz);  // O_dz kept
  EXPECT_EQ(after.ozd, after.width + after.odz + after.ddz);  // re-coupled
  // The change landed in the log.
  ASSERT_EQ(sync.changed_offsets().size(), 1u);
  EXPECT_EQ(sync.changed_offsets()[0], lat);
}

}  // namespace
}  // namespace hb
