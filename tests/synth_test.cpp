// Algorithm 3: resizing primitives and the analyse-redesign loop.
#include <gtest/gtest.h>

#include "gen/alu.hpp"
#include "gen/des.hpp"
#include "netlist/builder.hpp"
#include "netlist/stdcells.hpp"
#include "netlist/validate.hpp"
#include "synth/redesign_loop.hpp"
#include "synth/resize.hpp"

namespace hb {
namespace {

class SynthTest : public ::testing::Test {
 protected:
  std::shared_ptr<const Library> lib_ = make_standard_library();
};

TEST_F(SynthTest, UpsizeWalksTheFamily) {
  TopBuilder b("u", lib_);
  const NetId a = b.port_in("a");
  b.port_out_net("y", b.gate("NAND2X1", {a, a}, "g"));
  Design d = b.finish();
  const InstId g = d.top().find_inst("g");

  EXPECT_TRUE(upsize_instance(d, g));
  EXPECT_EQ(d.lib().cell(d.top().inst(g).cell).name(), "NAND2X2");
  EXPECT_TRUE(upsize_instance(d, g));
  EXPECT_EQ(d.lib().cell(d.top().inst(g).cell).name(), "NAND2X4");
  EXPECT_FALSE(upsize_instance(d, g));  // already strongest
  EXPECT_TRUE(validate(d).ok());
}

TEST_F(SynthTest, TotalAreaTracksResizes) {
  TopBuilder b("a", lib_);
  const NetId a = b.port_in("a");
  b.port_out_net("y", b.gate("INVX1", {a}, "g"));
  Design d = b.finish();
  const double before = total_area_um2(d);
  ASSERT_TRUE(upsize_instance(d, d.top().find_inst("g")));
  EXPECT_GT(total_area_um2(d), before);
}

TEST_F(SynthTest, AreaRecursesIntoSubmodules) {
  TopBuilder b("h", lib_);
  const ModuleId sub = b.design().add_module("inner");
  {
    Module& m = b.design().module_mut(sub);
    const NetId x = m.add_net("x");
    const NetId y = m.add_net("y");
    m.bind_port(m.add_port("A", PortDirection::kInput), x);
    m.bind_port(m.add_port("Y", PortDirection::kOutput), y);
    const InstId g = m.add_cell_inst("g", b.lib().require("INVX4"), 2);
    m.connect(g, 0, x);
    m.connect(g, 1, y);
  }
  const NetId a = b.port_in("a");
  const NetId y = b.net("y");
  b.submodule(sub, {a, y}, "m0");
  b.port_out_net("q", y);
  const Design d = b.finish();
  const double inv_x4_area = lib_->cell(lib_->require("INVX4")).area_um2();
  EXPECT_NEAR(total_area_um2(d), inv_x4_area, 1e-9);
}

TEST_F(SynthTest, LoopMeetsTimingOnAlu) {
  AluSpec spec;
  spec.bits = 16;
  Design design = make_alu(lib_, spec);
  const ClockSet clocks = make_single_clock(ps(3400), ps(1400));

  RedesignOptions options;
  const RedesignResult res = run_redesign_loop(design, clocks, options);
  EXPECT_TRUE(res.met_timing);
  EXPECT_LT(res.initial_worst_slack, 0);
  EXPECT_GT(res.final_worst_slack, 0);
  EXPECT_GT(res.cells_resized, 0);
  EXPECT_GT(res.final_area_um2, res.initial_area_um2);
  EXPECT_TRUE(validate(design).ok());
}

TEST_F(SynthTest, LoopIsNoOpWhenTimingAlreadyMet) {
  AluSpec spec;
  spec.bits = 8;
  Design design = make_alu(lib_, spec);
  const ClockSet clocks = make_single_clock(ns(20), ns(8));
  const RedesignResult res = run_redesign_loop(design, clocks);
  EXPECT_TRUE(res.met_timing);
  EXPECT_EQ(res.cells_resized, 0);
  EXPECT_EQ(res.final_area_um2, res.initial_area_um2);
}

TEST_F(SynthTest, LoopStopsWhenTimingUnreachable) {
  AluSpec spec;
  spec.bits = 16;
  Design design = make_alu(lib_, spec);
  // 500 ps period: unreachable at any drive strength.
  const ClockSet clocks = make_single_clock(ps(500), ps(200));
  RedesignOptions options;
  options.max_iterations = 30;
  const RedesignResult res = run_redesign_loop(design, clocks, options);
  EXPECT_FALSE(res.met_timing);
  // It must terminate by exhausting upsizes or iterations, not hang.
  EXPECT_LE(res.iterations, 30);
}

}  // namespace
}  // namespace hb
