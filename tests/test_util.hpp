// Shared test fixtures: the generator-network workload list and the
// byte-level comparison helpers used by the determinism sweeps
// (parallel_sweep_test) and the BLIF round-trip differential suite
// (blif_roundtrip_test).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gen/alu.hpp"
#include "gen/des.hpp"
#include "gen/fig1.hpp"
#include "gen/filter.hpp"
#include "gen/fsm.hpp"
#include "gen/pipeline.hpp"
#include "gen/random_network.hpp"
#include "netlist/stdcells.hpp"
#include "sta/analysis_pass.hpp"
#include "sta/cluster.hpp"
#include "sta/slack_engine.hpp"

namespace hb {

// Restore process-wide kernel mode and sweep tuning on scope exit so a
// failing assertion cannot leak a forced configuration into other tests.
struct KernelConfigGuard {
  KernelMode mode = kernel_mode();
  SweepTuning tuning = sweep_tuning();
  ~KernelConfigGuard() {
    set_kernel_mode(mode);
    set_sweep_tuning(tuning);
  }
};

struct Workload {
  std::string name;
  Design design;
  ClockSet clocks;
};

/// One of every generator network, with its canonical clock set.
inline std::vector<Workload> all_generator_networks() {
  auto lib = make_standard_library();
  std::vector<Workload> out;
  {
    Fig1Config cfg;
    out.push_back({"fig1", make_fig1_design(lib, cfg), make_fig1_clocks(cfg)});
  }
  out.push_back({"fsm_flat", make_fsm_flat(lib), make_single_clock(ns(20), ns(8))});
  out.push_back({"alu", make_alu(lib), make_single_clock(ns(8), ps(3200))});
  out.push_back({"des", make_des(lib), make_single_clock(ns(6), ps(2400))});
  {
    PipelineSpec spec;
    spec.stage_depths = {6, 6, 6};
    spec.width = 6;
    out.push_back({"pipeline", make_pipeline(lib, spec),
                   make_two_phase_clocks(ns(6))});
  }
  {
    FilterSpec spec;
    spec.width = 8;
    spec.taps = 4;
    spec.reg_cell = "TLATCH";
    out.push_back({"filter", make_multirate_filter(lib, spec),
                   make_multirate_clocks(ns(8))});
  }
  {
    RandomNetworkSpec spec;
    spec.seed = 7;
    spec.num_clocks = 2;
    spec.banks = 4;
    spec.bank_width = 5;
    spec.gates_per_stage = 40;
    RandomNetwork net = make_random_network(lib, spec);
    out.push_back({"random", std::move(net.design), std::move(net.clocks)});
  }
  return out;
}

/// Raw bytes of every cached pass of every cluster, in a fixed order.
inline std::vector<std::uint8_t> pass_bytes(const SlackEngine& engine) {
  std::vector<std::uint8_t> out;
  const auto append = [&out](const PassSide& side) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(side.data());
    out.insert(out.end(), p, p + side.size() * sizeof(RiseFall));
  };
  for (std::uint32_t c = 0; c < engine.clusters().num_clusters(); ++c) {
    for (std::size_t p = 0; p < engine.num_passes(ClusterId(c)); ++p) {
      const PassResult& res = engine.cached_pass(ClusterId(c), p);
      append(res.ready);
      append(res.required);
    }
  }
  return out;
}

}  // namespace hb
