// Timing graph construction: node roles, component and net arcs,
// sequential-cell arc exclusion, hierarchy, topological order, and the
// interactive delay-adjustment hooks.
#include <gtest/gtest.h>

#include "gen/fsm.hpp"
#include "netlist/builder.hpp"
#include "netlist/stdcells.hpp"
#include "sta/cluster.hpp"
#include "sta/hummingbird.hpp"
#include "sta/timing_graph.hpp"

namespace hb {
namespace {

class TimingGraphTest : public ::testing::Test {
 protected:
  std::shared_ptr<const Library> lib_ = make_standard_library();
};

TEST_F(TimingGraphTest, NodeRolesAssigned) {
  TopBuilder b("roles", lib_);
  const NetId clk = b.port_in("clk", true);
  const NetId d = b.port_in("d");
  const NetId inv = b.gate("INVX1", {d}, "g");
  const NetId q = b.latch("DFFT", inv, clk, "ff");
  b.port_out_net("q", q);
  const Design design = b.finish();

  DelayCalculator calc(design);
  TimingGraph graph(design, calc);

  const Module& top = design.top();
  const InstId ff = top.find_inst("ff");
  const Cell& dff = lib_->cell(top.inst(ff).cell);
  EXPECT_EQ(graph.node(graph.pin_node(ff, dff.sync().data_in)).role,
            NodeRole::kSyncDataIn);
  EXPECT_EQ(graph.node(graph.pin_node(ff, dff.sync().control)).role,
            NodeRole::kSyncControl);
  EXPECT_EQ(graph.node(graph.pin_node(ff, dff.sync().data_out)).role,
            NodeRole::kSyncDataOut);
  const InstId g = top.find_inst("g");
  EXPECT_EQ(graph.node(graph.pin_node(g, 0)).role, NodeRole::kCombPin);

  int clock_ports = 0, in_ports = 0, out_ports = 0;
  for (std::uint32_t p = 0; p < top.ports().size(); ++p) {
    switch (graph.node(graph.top_port_node(p)).role) {
      case NodeRole::kClockPort: ++clock_ports; break;
      case NodeRole::kPortIn: ++in_ports; break;
      case NodeRole::kPortOut: ++out_ports; break;
      default: break;
    }
  }
  EXPECT_EQ(clock_ports, 1);
  EXPECT_EQ(in_ports, 1);
  EXPECT_EQ(out_ports, 1);
}

TEST_F(TimingGraphTest, SequentialCellsContributeNoArcs) {
  TopBuilder b("seq", lib_);
  const NetId clk = b.port_in("clk", true);
  const NetId d = b.port_in("d");
  b.port_out_net("q", b.latch("TLATCH", d, clk, "lat"));
  const Design design = b.finish();
  DelayCalculator calc(design);
  TimingGraph graph(design, calc);

  const InstId lat = design.top().find_inst("lat");
  const Cell& cell = lib_->cell(design.top().inst(lat).cell);
  // No arc may leave the latch D or CK pins or enter its Q pin from inside.
  const TNodeId din = graph.pin_node(lat, cell.sync().data_in);
  const TNodeId ctl = graph.pin_node(lat, cell.sync().control);
  const TNodeId q = graph.pin_node(lat, cell.sync().data_out);
  EXPECT_TRUE(graph.fanout(din).empty());
  EXPECT_TRUE(graph.fanout(ctl).empty());
  EXPECT_TRUE(graph.fanin(q).empty());
  // The latch transparency is modelled by offsets, not arcs: despite the
  // library's D->Q arc, the graph has none.
}

TEST_F(TimingGraphTest, NetArcsConnectDriversToAllSinks) {
  TopBuilder b("fan", lib_);
  const NetId a = b.port_in("a");
  const NetId y = b.gate("INVX1", {a}, "drv");
  for (int i = 0; i < 3; ++i) {
    b.port_out_net("q" + std::to_string(i), b.gate("BUFX1", {y}));
  }
  const Design design = b.finish();
  DelayCalculator calc(design);
  TimingGraph graph(design, calc);

  const TNodeId out = graph.pin_node(design.top().find_inst("drv"), 1);
  EXPECT_EQ(graph.fanout(out).size(), 3u);
  for (std::uint32_t ai : graph.fanout(out)) {
    EXPECT_TRUE(graph.arc(ai).is_net);
    EXPECT_EQ(graph.arc(ai).delay, (RiseFall{0, 0}));
  }
}

TEST_F(TimingGraphTest, TopoOrderRespectsArcs) {
  const Design fsm = make_fsm_flat(lib_);
  DelayCalculator calc(fsm);
  TimingGraph graph(fsm, calc);
  std::vector<std::uint32_t> position(graph.num_nodes());
  const auto& topo = graph.topo_order();
  ASSERT_EQ(topo.size(), graph.num_nodes());
  for (std::uint32_t i = 0; i < topo.size(); ++i) position[topo[i].index()] = i;
  for (std::size_t a = 0; a < graph.num_arcs(); ++a) {
    EXPECT_LT(position[graph.arc(a).from.index()], position[graph.arc(a).to.index()]);
  }
}

TEST_F(TimingGraphTest, HierarchicalModuleBecomesComponentArcs) {
  const Design hier = make_fsm_hier(lib_);
  const Design flat = make_fsm_flat(lib_);
  DelayCalculator hc(hier), fc(flat);
  TimingGraph hg(hier, hc), fg(flat, fc);
  // The hierarchical graph is much smaller: the logic is one component.
  EXPECT_LT(hg.num_nodes(), fg.num_nodes() / 3);
  EXPECT_LT(hg.num_arcs(), fg.num_arcs());
}

TEST_F(TimingGraphTest, NodeNamesAreReadable) {
  TopBuilder b("names", lib_);
  const NetId a = b.port_in("a");
  b.port_out_net("y", b.gate("INVX1", {a}, "u1"));
  const Design design = b.finish();
  DelayCalculator calc(design);
  TimingGraph graph(design, calc);
  EXPECT_EQ(graph.node_name(graph.pin_node(design.top().find_inst("u1"), 0)), "u1.A");
  bool found_port = false;
  for (std::uint32_t n = 0; n < graph.num_nodes(); ++n) {
    if (graph.node_name(TNodeId(n)) == "port:a") found_port = true;
  }
  EXPECT_TRUE(found_port);
}

TEST_F(TimingGraphTest, DerateScalesDelaysAndSlack) {
  TopBuilder b("derate", lib_);
  const NetId clk = b.port_in("clk", true);
  NetId n = b.latch("DFFT", b.port_in("d"), clk, "ff1");
  for (int i = 0; i < 10; ++i) n = b.gate("INVX1", {n});
  b.port_out_net("q", b.latch("DFFT", n, clk, "ff2"));
  const Design design = b.finish();
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(10), 0, ns(4));

  // Compare the chain endpoint's slack (the worst terminal is the
  // delay-free PI->ff1 wire, which derating cannot move).
  auto ff2_slack = [](Hummingbird& analyser) {
    analyser.analyze();
    const SyncModel& sync = analyser.sync_model();
    for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
      if (sync.at(SyncId(i)).label == "ff2#0") {
        return analyser.engine().capture_slack(SyncId(i));
      }
    }
    return kInfinitePs;
  };
  Hummingbird base(design, clocks);
  const TimePs slack_base = ff2_slack(base);

  HummingbirdOptions slow;
  slow.delay_derate = 2.0;
  Hummingbird derated(design, clocks, slow);
  const TimePs slack_slow = ff2_slack(derated);
  ASSERT_NE(slack_base, kInfinitePs);
  EXPECT_LT(slack_slow, slack_base);
  // Doubling delays roughly doubles the path contribution.
  const TimePs dcz_and_chain_base = ns(10) - 65 - slack_base;
  const TimePs dcz_and_chain_slow = ns(10) - 65 - slack_slow;
  EXPECT_NEAR(static_cast<double>(dcz_and_chain_slow),
              2.0 * static_cast<double>(dcz_and_chain_base), 16.0);
}

TEST_F(TimingGraphTest, InstanceAdjustmentShiftsOneArc) {
  TopBuilder b("adj", lib_);
  const NetId a = b.port_in("a");
  b.port_out_net("y", b.gate("INVX1", {a}, "u1"));
  const Design design = b.finish();
  DelayCalculator calc(design);
  const InstId u1 = design.top().find_inst("u1");
  const Cell& inv = lib_->cell(design.top().inst(u1).cell);
  const RiseFall before = calc.arc_delay(design.top_id(), u1, inv.arcs()[0]);
  calc.adjust_instance(u1, ps(500));
  const RiseFall after = calc.arc_delay(design.top_id(), u1, inv.arcs()[0]);
  EXPECT_EQ(after.rise, before.rise + 500);
  EXPECT_EQ(after.fall, before.fall + 500);
  // Adjustments clamp at zero rather than going negative.
  calc.adjust_instance(u1, ns(-100));
  const RiseFall clamped = calc.arc_delay(design.top_id(), u1, inv.arcs()[0]);
  EXPECT_EQ(clamped.rise, 0);
}

// ---------------------------------------------------------------------------
// Clusters.

TEST_F(TimingGraphTest, ClustersPartitionTheLogic) {
  TopBuilder b("clus", lib_);
  const NetId clk = b.port_in("clk", true);
  // Two independent FF->INV->FF lanes: separate clusters.
  for (int lane = 0; lane < 2; ++lane) {
    NetId n = b.latch("DFFT", b.port_in("d" + std::to_string(lane)), clk,
                      "src" + std::to_string(lane));
    n = b.gate("INVX1", {n});
    b.port_out_net("q" + std::to_string(lane),
                   b.latch("DFFT", n, clk, "dst" + std::to_string(lane)));
  }
  const Design design = b.finish();
  DelayCalculator calc(design);
  TimingGraph graph(design, calc);
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(10), 0, ns(4));
  SyncModel sync(graph, clocks, calc);
  ClusterSet clusters(graph, sync);

  // Lanes: 2x (PI->D) + 2x (Q->INV->D) + 2x (Q->PO) = 6 data clusters, plus
  // the clock-distribution cluster (clk to both CK pins).
  EXPECT_EQ(clusters.num_clusters(), 7u);

  // Every lane's middle cluster has one source (src Q) and one sink (dst D).
  const InstId src0 = design.top().find_inst("src0");
  const Cell& dff = lib_->cell(design.top().inst(src0).cell);
  const TNodeId q0 = graph.pin_node(src0, dff.sync().data_out);
  const ClusterId c = clusters.cluster_of(q0);
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(clusters.cluster(c).source_nodes.size(), 1u);
  EXPECT_EQ(clusters.cluster(c).sink_nodes.size(), 1u);
  // The two lanes land in different clusters.
  const InstId src1 = design.top().find_inst("src1");
  EXPECT_NE(clusters.cluster_of(graph.pin_node(src1, dff.sync().data_out)), c);
}

TEST_F(TimingGraphTest, ClusterNodesStayTopological) {
  const Design fsm = make_fsm_flat(lib_);
  DelayCalculator calc(fsm);
  TimingGraph graph(fsm, calc);
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(10), 0, ns(4));
  SyncModel sync(graph, clocks, calc);
  ClusterSet clusters(graph, sync);

  std::vector<std::uint32_t> position(graph.num_nodes());
  for (std::uint32_t i = 0; i < graph.topo_order().size(); ++i) {
    position[graph.topo_order()[i].index()] = i;
  }
  for (std::uint32_t c = 0; c < clusters.num_clusters(); ++c) {
    const Cluster& cl = clusters.cluster(ClusterId(c));
    for (std::size_t i = 1; i < cl.nodes.size(); ++i) {
      EXPECT_LT(position[cl.nodes[i - 1].index()], position[cl.nodes[i].index()]);
    }
    for (std::uint32_t ai : cl.arcs) {
      EXPECT_EQ(clusters.cluster_of(graph.arc(ai).from), ClusterId(c));
      EXPECT_EQ(clusters.cluster_of(graph.arc(ai).to), ClusterId(c));
    }
  }
}

}  // namespace
}  // namespace hb
