#include <gtest/gtest.h>

#include <unordered_set>

#include "util/cancel.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace hb {
namespace {

TEST(TimeTest, LiteralHelpers) {
  EXPECT_EQ(ps(7), 7);
  EXPECT_EQ(ns(2), 2000);
  EXPECT_EQ(us(1), 1'000'000);
}

TEST(TimeTest, ModPeriodIsEuclidean) {
  EXPECT_EQ(mod_period(7, 5), 2);
  EXPECT_EQ(mod_period(5, 5), 0);
  EXPECT_EQ(mod_period(0, 5), 0);
  EXPECT_EQ(mod_period(-1, 5), 4);
  EXPECT_EQ(mod_period(-5, 5), 0);
  EXPECT_EQ(mod_period(-6, 5), 4);
}

TEST(TimeTest, GcdLcm) {
  EXPECT_EQ(gcd_ps(ns(20), ns(30)), ns(10));
  EXPECT_EQ(lcm_ps(ns(20), ns(30)), ns(60));
  EXPECT_EQ(lcm_ps(ns(10), ns(10)), ns(10));
}

TEST(TimeTest, FormatTime) {
  EXPECT_EQ(format_time(ns(12)), "12 ns");
  EXPECT_EQ(format_time(ps(-3)), "-3 ps");
  EXPECT_EQ(format_time(12345), "12.345 ns");
  EXPECT_EQ(format_time(kInfinitePs), "+inf");
}

TEST(IdsTest, InvalidByDefault) {
  NetId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, NetId::invalid());
  NetId other(3);
  EXPECT_TRUE(other.valid());
  EXPECT_NE(id, other);
  EXPECT_EQ(other.index(), 3u);
}

TEST(IdsTest, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<NetId, InstId>);
  static_assert(!std::is_same_v<ClockId, ClockEdgeId>);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, Uniform01InUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, PickCoversAllBuckets) {
  Rng rng(9);
  std::unordered_set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.pick(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(CancelTest, TokenResetsForReuse) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  token.reset();
  EXPECT_FALSE(token.cancelled());
  // A second request can cancel and reset again — nothing is latched.
  token.cancel();
  token.reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelTest, BudgetTimerCycleCapRearms) {
  AnalysisBudget budget;
  budget.max_total_cycles = 3;
  BudgetTimer timer(budget);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(timer.exhausted());
    timer.count_cycle();
  }
  EXPECT_TRUE(timer.exhausted());
  EXPECT_TRUE(timer.exhausted());  // sticky within a run

  timer.rearm();  // next request: same budget, fresh counters
  EXPECT_EQ(timer.cycles(), 0);
  EXPECT_FALSE(timer.exhausted());
  timer.count_cycle();
  timer.count_cycle();
  timer.count_cycle();
  EXPECT_TRUE(timer.exhausted());
}

TEST(CancelTest, BudgetTimerWallDeadlineRearmsFromNow) {
  AnalysisBudget tight;
  tight.wall_seconds = 1e-9;  // expires before the first check
  BudgetTimer timer(tight);
  EXPECT_TRUE(timer.exhausted());

  AnalysisBudget roomy;
  roomy.wall_seconds = 3600;
  timer.rearm(roomy);  // re-arm against a different budget
  EXPECT_FALSE(timer.exhausted());

  timer.rearm(tight);  // and back to an instantly-expiring one
  EXPECT_TRUE(timer.exhausted());
}

TEST(CancelTest, RearmedTimerStaysExhaustedUntilTokenResets) {
  CancelToken token;
  AnalysisBudget budget;
  budget.cancel = &token;
  BudgetTimer timer(budget);
  EXPECT_FALSE(timer.exhausted());
  token.cancel();
  EXPECT_TRUE(timer.exhausted());

  timer.rearm();  // timer state clears, but the token still reports cancel
  EXPECT_TRUE(timer.exhausted());

  timer.rearm();
  token.reset();  // only resetting the token truly disarms the pair
  EXPECT_FALSE(timer.exhausted());
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

}  // namespace
}  // namespace hb
