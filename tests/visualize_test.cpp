// Dot export and slack histograms.
#include <gtest/gtest.h>

#include "gen/pipeline.hpp"
#include "netlist/builder.hpp"
#include "netlist/stdcells.hpp"
#include "sta/hummingbird.hpp"
#include "sta/visualize.hpp"

namespace hb {
namespace {

class VisualizeTest : public ::testing::Test {
 protected:
  std::shared_ptr<const Library> lib_ = make_standard_library();

  Design make_slow() {
    TopBuilder b("slow", lib_);
    const NetId clk = b.port_in("clk", true);
    NetId n = b.latch("DFFT", b.port_in("d"), clk, "ff1");
    for (int i = 0; i < 64; ++i) n = b.gate("INVX1", {n});
    b.port_out_net("q", b.latch("DFFT", n, clk, "ff2"));
    return b.finish();
  }
};

TEST_F(VisualizeTest, DotContainsSlowClusterAndColours) {
  const Design design = make_slow();
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(2), 0, ns(1));
  Hummingbird analyser(design, clocks);
  analyser.analyze();
  const std::string dot = to_dot(analyser.engine());
  EXPECT_NE(dot.find("digraph timing"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=red"), std::string::npos);  // violations
  EXPECT_NE(dot.find("ff2_D"), std::string::npos);          // endpoint present
  EXPECT_NE(dot.find("penwidth=3"), std::string::npos);     // slow path marked
  // Only the slow cluster is drawn by default: the clean PI->ff1 wire
  // cluster is not.
  EXPECT_EQ(dot.find("port_d"), std::string::npos);
}

TEST_F(VisualizeTest, DotDrawsEverythingWhenUnlimited) {
  const Design design = make_slow();
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(10), 0, ns(4));  // meets timing
  Hummingbird analyser(design, clocks);
  analyser.analyze();
  VisualizeOptions options;
  options.max_paths = 0;  // no slow paths to anchor on -> draw all
  const std::string dot = to_dot(analyser.engine(), options);
  EXPECT_NE(dot.find("ff1_Q"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=palegreen3"), std::string::npos);
  EXPECT_EQ(dot.find("fillcolor=red"), std::string::npos);
}

TEST_F(VisualizeTest, HistogramBucketsCoverAllTerminals) {
  PipelineSpec spec;
  spec.stage_depths = {30, 10, 20};
  spec.width = 2;
  const Design design = make_pipeline(lib_, spec);
  Hummingbird analyser(design, make_two_phase_clocks(ns(10)));
  analyser.analyze();
  const std::string hist = slack_histogram(analyser.engine(), 8);
  // 8 bucket lines, each with a count; counts sum to the number of
  // constrained terminals.
  int lines = 0;
  long total = 0;
  std::istringstream is(hist);
  std::string line;
  while (std::getline(is, line)) {
    ++lines;
    const auto pos = line.find_last_of(' ');
    total += std::stol(line.substr(pos + 1));
  }
  EXPECT_EQ(lines, 8);
  std::size_t constrained = 0;
  const SyncModel& sync = analyser.sync_model();
  for (std::uint32_t i = 0; i < sync.num_instances(); ++i) {
    if (analyser.engine().launch_slack(SyncId(i)) != kInfinitePs) ++constrained;
    if (analyser.engine().capture_slack(SyncId(i)) != kInfinitePs) ++constrained;
  }
  EXPECT_EQ(total, static_cast<long>(constrained));
}

TEST_F(VisualizeTest, HistogramHandlesNoTerminals) {
  TopBuilder b("empty", lib_);
  const NetId a = b.port_in("a");
  b.port_out_net("y", b.gate("INVX1", {a}));
  const Design design = b.finish();
  ClockSet clocks;
  clocks.add_simple_clock("clk", ns(10), 0, ns(4));
  HummingbirdOptions options;
  options.sync.constrain_ports = false;
  Hummingbird analyser(design, clocks, options);
  analyser.analyze();
  EXPECT_NE(slack_histogram(analyser.engine()).find("no constrained"),
            std::string::npos);
}

}  // namespace
}  // namespace hb
